//! Rate limiting at the end-host.
//!
//! §2.2: "The implementation consists of a rate limiter and a rate
//! controller at end-hosts for every flow". [`PacedSender`] is that rate
//! limiter: it releases fixed-size data frames at a configurable rate;
//! the rate controller (in `tpp-apps::rcpstar`) adjusts the rate from
//! network feedback. [`TokenBucket`] is the burst-tolerant variant used
//! where strict pacing is not wanted.

use crate::probe::DATA_ETHERTYPE;
use tpp_wire::ethernet::build_frame;
use tpp_wire::EthernetAddress;

/// A classic token bucket: `rate_bps` sustained, `burst_bytes` of slack.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bps: u64,
    burst_bytes: u64,
    tokens_bytes: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// A bucket that starts full.
    pub fn new(rate_bps: u64, burst_bytes: u64) -> Self {
        TokenBucket {
            rate_bps,
            burst_bytes,
            tokens_bytes: burst_bytes as f64,
            last_ns: 0,
        }
    }

    /// Change the sustained rate (tokens already accrued are kept).
    pub fn set_rate_bps(&mut self, rate_bps: u64, now_ns: u64) {
        self.refill(now_ns);
        self.rate_bps = rate_bps;
    }

    /// The current sustained rate.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    fn refill(&mut self, now_ns: u64) {
        let dt = now_ns.saturating_sub(self.last_ns);
        self.last_ns = now_ns.max(self.last_ns);
        let added = self.rate_bps as f64 * dt as f64 / 8e9;
        self.tokens_bytes = (self.tokens_bytes + added).min(self.burst_bytes as f64);
    }

    /// Try to send `bytes` now; debits the bucket on success.
    pub fn try_consume(&mut self, bytes: usize, now_ns: u64) -> bool {
        self.refill(now_ns);
        if self.tokens_bytes >= bytes as f64 {
            self.tokens_bytes -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// Nanoseconds until `bytes` worth of tokens will be available
    /// (0 if available now).
    pub fn time_until(&mut self, bytes: usize, now_ns: u64) -> u64 {
        self.refill(now_ns);
        let deficit = bytes as f64 - self.tokens_bytes;
        if deficit <= 0.0 {
            return 0;
        }
        if self.rate_bps == 0 {
            return u64::MAX;
        }
        (deficit * 8e9 / self.rate_bps as f64).ceil() as u64
    }
}

/// A strictly paced constant-size-frame sender: one frame every
/// `frame_bits / rate` nanoseconds.
///
/// The app drives it from a timer loop:
///
/// 1. call [`PacedSender::poll`] with the current time — it returns a
///    frame when one is due and advances the internal departure clock;
/// 2. re-arm a timer for [`PacedSender::next_tx_ns`].
#[derive(Debug, Clone)]
pub struct PacedSender {
    dst: EthernetAddress,
    payload_len: usize,
    rate_bps: u64,
    next_tx_ns: u64,
    /// Total payload bytes released.
    pub bytes_sent: u64,
    /// Frames released.
    pub frames_sent: u64,
    seq: u32,
}

impl PacedSender {
    /// A sender of `payload_len`-byte datagrams to `dst`, starting at
    /// `start_ns`, initially at `rate_bps`.
    pub fn new(dst: EthernetAddress, payload_len: usize, rate_bps: u64, start_ns: u64) -> Self {
        assert!(payload_len >= 4, "payload carries a 4-byte sequence number");
        PacedSender {
            dst,
            payload_len,
            rate_bps,
            next_tx_ns: start_ns,
            bytes_sent: 0,
            frames_sent: 0,
            seq: 0,
        }
    }

    /// Current pacing rate, bits/s.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Change the pacing rate. Takes effect from the next departure; if
    /// the sender was stalled far in the past it catches up from `now`
    /// rather than bursting.
    pub fn set_rate_bps(&mut self, rate_bps: u64, now_ns: u64) {
        self.rate_bps = rate_bps.max(1);
        self.next_tx_ns = self.next_tx_ns.max(now_ns.saturating_sub(self.gap_ns()));
    }

    /// Inter-frame gap at the current rate.
    pub fn gap_ns(&self) -> u64 {
        let frame_bits = (self.payload_len as u64 + tpp_wire::ETHERNET_HEADER_LEN as u64) * 8;
        (frame_bits * 1_000_000_000).div_ceil(self.rate_bps.max(1))
    }

    /// When the next frame is due.
    pub fn next_tx_ns(&self) -> u64 {
        self.next_tx_ns
    }

    /// Release the next frame if it is due. At most one frame per call;
    /// callers loop if they polled late and want to catch up.
    pub fn poll(&mut self, now_ns: u64, src: EthernetAddress) -> Option<Vec<u8>> {
        if now_ns < self.next_tx_ns {
            return None;
        }
        let mut payload = vec![0u8; self.payload_len];
        payload[0..4].copy_from_slice(&self.seq.to_be_bytes());
        self.seq = self.seq.wrapping_add(1);
        self.bytes_sent += self.payload_len as u64;
        self.frames_sent += 1;
        self.next_tx_ns += self.gap_ns();
        // Never accumulate unbounded credit while idle/stalled.
        if self.next_tx_ns + self.gap_ns() < now_ns {
            self.next_tx_ns = now_ns + self.gap_ns();
        }
        Some(build_frame(self.dst, src, DATA_ETHERTYPE, &payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn token_bucket_sustained_rate() {
        // 8 Mb/s = 1 MB/s; over 1 s, ~1 MB should pass in 1 KB units.
        let mut tb = TokenBucket::new(8_000_000, 2_000);
        let mut sent = 0u64;
        for t in 0..1_000_000u64 {
            let now = t * 1_000; // every µs
            if tb.try_consume(1_000, now) {
                sent += 1_000;
            }
        }
        assert!((990_000..=1_010_000).contains(&sent), "sent {sent}");
    }

    #[test]
    fn token_bucket_burst_then_starve() {
        let mut tb = TokenBucket::new(8_000, 5_000); // 1 KB/s, 5 KB burst
                                                     // Burst drains immediately.
        assert!(tb.try_consume(5_000, 0));
        assert!(!tb.try_consume(1, 0));
        // Refill takes 1 ms per byte at 1 KB/s.
        let wait = tb.time_until(1_000, 0);
        assert_eq!(wait, SEC, "1000 bytes at 1000 B/s");
        assert!(tb.try_consume(1_000, SEC));
    }

    #[test]
    fn token_bucket_rate_change() {
        let mut tb = TokenBucket::new(8_000, 1_000);
        tb.try_consume(1_000, 0);
        tb.set_rate_bps(16_000, 0);
        // Double rate: 1000 bytes in 0.5 s.
        assert!(!tb.try_consume(1_000, SEC / 4));
        assert!(tb.try_consume(1_000, SEC / 2));
    }

    #[test]
    fn paced_sender_spacing_and_sequence() {
        let dst = EthernetAddress::from_host_id(1);
        let src = EthernetAddress::from_host_id(2);
        // 1000-byte payload + 14 header = 8112 bits; 8.112 Mb/s -> 1 ms gap.
        let mut sender = PacedSender::new(dst, 1000, 8_112_000, 0);
        assert_eq!(sender.gap_ns(), 1_000_000);
        let f0 = sender.poll(0, src).unwrap();
        assert!(sender.poll(500_000, src).is_none(), "not due yet");
        let f1 = sender.poll(1_000_000, src).unwrap();
        assert_eq!(&f0[14..18], &0u32.to_be_bytes());
        assert_eq!(&f1[14..18], &1u32.to_be_bytes());
        assert_eq!(sender.frames_sent, 2);
        assert_eq!(sender.bytes_sent, 2000);
    }

    #[test]
    fn paced_sender_rate_change_and_no_burst_catchup() {
        let dst = EthernetAddress::from_host_id(1);
        let src = EthernetAddress::from_host_id(2);
        let mut sender = PacedSender::new(dst, 1000, 8_112_000, 0);
        sender.poll(0, src).unwrap();
        // Stall for 100 ms, then poll: at most a small catch-up, not 100
        // frames at once.
        let mut burst = 0;
        let mut t = 100_000_000;
        while sender.poll(t, src).is_some() {
            burst += 1;
            t += 1; // same instant, 1 ns apart
            if burst > 10 {
                break;
            }
        }
        assert!(
            burst <= 3,
            "stall must not convert into a burst, got {burst}"
        );
        // Halve the rate: gap doubles.
        let old_gap = sender.gap_ns();
        sender.set_rate_bps(4_056_000, t);
        assert_eq!(sender.gap_ns(), old_gap * 2);
    }
}
