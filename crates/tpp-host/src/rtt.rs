//! Smoothed round-trip-time estimation from probe echoes, in the style
//! of RFC 6298 (SRTT/RTTVAR EWMAs). RCP's control equation needs "the
//! average round-trip time of flows traversing the link" (§2.2); in the
//! end-host refactoring each flow measures its own RTT from echoed TPPs.

/// EWMA RTT estimator.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt_ns: Option<f64>,
    rttvar_ns: f64,
    /// Number of samples absorbed.
    pub samples: u64,
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl RttEstimator {
    /// An estimator with no samples yet.
    pub fn new() -> Self {
        RttEstimator {
            srtt_ns: None,
            rttvar_ns: 0.0,
            samples: 0,
        }
    }

    /// Absorb one RTT sample (send → echo-receive time), ns.
    pub fn on_sample(&mut self, rtt_ns: u64) {
        let r = rtt_ns as f64;
        self.samples += 1;
        match self.srtt_ns {
            None => {
                self.srtt_ns = Some(r);
                self.rttvar_ns = r / 2.0;
            }
            Some(srtt) => {
                // RFC 6298 weights: alpha = 1/8, beta = 1/4.
                self.rttvar_ns = 0.75 * self.rttvar_ns + 0.25 * (srtt - r).abs();
                self.srtt_ns = Some(0.875 * srtt + 0.125 * r);
            }
        }
    }

    /// The smoothed RTT, if any samples have arrived.
    pub fn srtt_ns(&self) -> Option<u64> {
        self.srtt_ns.map(|v| v as u64)
    }

    /// The smoothed RTT or a caller-supplied fallback for the cold-start
    /// period.
    pub fn srtt_or(&self, fallback_ns: u64) -> u64 {
        self.srtt_ns().unwrap_or(fallback_ns)
    }

    /// Mean deviation of the RTT.
    pub fn rttvar_ns(&self) -> u64 {
        self.rttvar_ns as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut est = RttEstimator::new();
        assert_eq!(est.srtt_ns(), None);
        assert_eq!(est.srtt_or(7), 7);
        est.on_sample(1_000_000);
        assert_eq!(est.srtt_ns(), Some(1_000_000));
        assert_eq!(est.rttvar_ns(), 500_000);
    }

    #[test]
    fn converges_to_steady_rtt() {
        let mut est = RttEstimator::new();
        est.on_sample(5_000_000); // one outlier
        for _ in 0..100 {
            est.on_sample(1_000_000);
        }
        let srtt = est.srtt_ns().unwrap();
        assert!((990_000..=1_050_000).contains(&srtt), "srtt {srtt}");
        assert!(est.rttvar_ns() < 100_000);
        assert_eq!(est.samples, 101);
    }

    #[test]
    fn smooths_rather_than_tracks_spikes() {
        let mut est = RttEstimator::new();
        for _ in 0..50 {
            est.on_sample(1_000_000);
        }
        est.on_sample(10_000_000); // spike
        let srtt = est.srtt_ns().unwrap();
        assert!(srtt < 3_000_000, "one spike moves srtt by <= 1/8: {srtt}");
    }
}
