//! Multi-packet queries — §3.2: "End-hosts can use multiple packets if a
//! single packet is insufficient for a network task" and §3.2.2: "Recall
//! that end-hosts can use multiple TPPs if one packet is insufficient to
//! load all statistics."
//!
//! A [`SegmentedQuery`] wants many statistics per hop over a long path —
//! more words than one packet's memory budget allows. The planner splits
//! the statistic list across several probes, each tagged with a query id
//! and a segment index in its inner payload; the [`SegmentedCollector`]
//! reassembles echoes into complete per-hop rows.
//!
//! The split is by *columns* (statistics), not rows (hops): every probe
//! still traverses the whole path, so each hop's row is assembled from
//! values sampled within one probe-train — the tightest coherence the
//! dataplane offers without hardware support for multi-packet
//! transactions.

use std::collections::BTreeMap;

use crate::probe::ProbeBuilder;
use crate::telemetry::split_hops;
use tpp_isa::{Instruction, Program, SymbolTable, VirtAddr};
use tpp_wire::EthernetAddress;

/// A planning or decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A requested symbol did not resolve.
    UnknownSymbol(String),
    /// The memory budget cannot fit even one statistic for the path.
    BudgetTooSmall {
        /// Words needed per hop for a single statistic times hops.
        needed: usize,
        /// The caller's budget.
        budget: usize,
    },
}

impl core::fmt::Display for QueryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QueryError::UnknownSymbol(s) => write!(f, "unknown symbol [{s}]"),
            QueryError::BudgetTooSmall { needed, budget } => {
                write!(f, "packet-memory budget {budget} words < minimum {needed}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// A planned multi-packet query.
#[derive(Debug, Clone)]
pub struct SegmentedQuery {
    /// Symbols per segment, in push order.
    pub layout: Vec<Vec<String>>,
    probes: Vec<ProbeBuilder>,
    expected_hops: usize,
}

impl SegmentedQuery {
    /// Plan a query for `symbols` (each one `PUSH`ed per hop) over a
    /// path of `expected_hops`, with at most `max_mem_words` of packet
    /// memory per probe.
    pub fn plan(
        symbols: &[&str],
        table: &SymbolTable,
        expected_hops: usize,
        max_mem_words: usize,
    ) -> Result<SegmentedQuery, QueryError> {
        assert!(expected_hops > 0, "a path has at least one hop");
        let per_probe = max_mem_words / expected_hops;
        if per_probe == 0 {
            return Err(QueryError::BudgetTooSmall {
                needed: expected_hops,
                budget: max_mem_words,
            });
        }
        let mut addrs: Vec<(String, VirtAddr)> = Vec::new();
        for symbol in symbols {
            let addr = table
                .resolve(symbol)
                .map_err(|_| QueryError::UnknownSymbol(symbol.to_string()))?;
            addrs.push((symbol.to_string(), addr));
        }
        let mut layout = Vec::new();
        let mut probes = Vec::new();
        for chunk in addrs.chunks(per_probe) {
            let program = Program::new(
                chunk
                    .iter()
                    .map(|(_, addr)| Instruction::Push { addr: *addr })
                    .collect(),
            );
            probes.push(ProbeBuilder::stack(&program, expected_hops));
            layout.push(chunk.iter().map(|(s, _)| s.clone()).collect());
        }
        Ok(SegmentedQuery {
            layout,
            probes,
            expected_hops,
        })
    }

    /// Number of probe packets one round of this query costs.
    pub fn segments(&self) -> usize {
        self.probes.len()
    }

    /// Mint the probe train for one round. Each frame's inner payload is
    /// `[query_id, segment_index]` (two big-endian u32s).
    pub fn frames(
        &self,
        dst: EthernetAddress,
        src: EthernetAddress,
        query_id: u32,
    ) -> Vec<Vec<u8>> {
        self.probes
            .iter()
            .enumerate()
            .map(|(idx, probe)| {
                let mut payload = [0u8; 8];
                payload[0..4].copy_from_slice(&query_id.to_be_bytes());
                payload[4..8].copy_from_slice(&(idx as u32).to_be_bytes());
                probe.build_frame_with_payload(dst, src, &payload, crate::probe::DATA_ETHERTYPE.0)
            })
            .collect()
    }

    /// Build a collector matching this plan.
    pub fn collector(&self) -> SegmentedCollector {
        SegmentedCollector {
            layout: self.layout.clone(),
            expected_hops: self.expected_hops,
            partial: BTreeMap::new(),
            finished: std::collections::BTreeSet::new(),
            complete: Vec::new(),
        }
    }
}

/// One fully-reassembled query result: per hop, symbol → value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WideRow {
    /// The query id the sender tagged.
    pub query_id: u32,
    /// `rows[hop][symbol] = value`.
    pub rows: Vec<BTreeMap<String, u32>>,
}

/// Reassembles echoed probe segments into [`WideRow`]s.
#[derive(Debug)]
pub struct SegmentedCollector {
    layout: Vec<Vec<String>>,
    expected_hops: usize,
    /// query id → (segment index → per-hop words).
    partial: BTreeMap<u32, BTreeMap<u32, Vec<Vec<u32>>>>,
    /// Query ids already completed (late duplicates are dropped).
    finished: std::collections::BTreeSet<u32>,
    /// Finished queries.
    pub complete: Vec<WideRow>,
}

impl SegmentedCollector {
    /// Feed one received frame; returns `true` if it completed a query.
    pub fn on_frame(&mut self, frame: &[u8], my_mac: EthernetAddress) -> bool {
        let Some(tpp) = crate::probe::parse_echo(frame, my_mac) else {
            return false;
        };
        let inner = tpp.inner_payload();
        if inner.len() < 8 {
            return false;
        }
        let query_id = u32::from_be_bytes(inner[0..4].try_into().expect("4 bytes"));
        let segment = u32::from_be_bytes(inner[4..8].try_into().expect("4 bytes"));
        if self.finished.contains(&query_id) {
            return false; // late duplicate of a completed query
        }
        let Some(symbols) = self.layout.get(segment as usize) else {
            return false;
        };
        let Some(sample) = split_hops(&tpp, symbols.len()) else {
            return false;
        };
        if sample.hop_count != self.expected_hops {
            return false;
        }
        let entry = self.partial.entry(query_id).or_default();
        entry.insert(
            segment,
            sample.hops.iter().map(|h| h.words.clone()).collect(),
        );
        if entry.len() == self.layout.len() {
            self.finished.insert(query_id);
            let segments = self.partial.remove(&query_id).expect("present");
            let mut rows: Vec<BTreeMap<String, u32>> = vec![BTreeMap::new(); self.expected_hops];
            for (segment, hops) in segments {
                let symbols = &self.layout[segment as usize];
                for (hop, words) in hops.iter().enumerate() {
                    for (symbol, value) in symbols.iter().zip(words) {
                        rows[hop].insert(symbol.clone(), *value);
                    }
                }
            }
            self.complete.push(WideRow { query_id, rows });
            return true;
        }
        false
    }

    /// Queries still waiting for segments.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_isa::Stat;

    fn symbols() -> Vec<&'static str> {
        vec![
            "Switch:SwitchID",
            "Queue:QueueSize",
            "Link:RX-Bytes",
            "Link:TX-Bytes",
            "Link:CapacityKbps",
            "PacketMetadata:InputPort",
            "Switch:PacketsProcessed",
        ]
    }

    #[test]
    fn plan_splits_by_memory_budget() {
        let table = SymbolTable::new();
        // 7 stats x 3 hops = 21 words; budget 9 words -> 3 stats/probe
        // -> 3 segments (3 + 3 + 1).
        let q = SegmentedQuery::plan(&symbols(), &table, 3, 9).unwrap();
        assert_eq!(q.segments(), 3);
        assert_eq!(q.layout[0].len(), 3);
        assert_eq!(q.layout[1].len(), 3);
        assert_eq!(q.layout[2].len(), 1);
        // Generous budget -> a single probe.
        let q = SegmentedQuery::plan(&symbols(), &table, 3, 64).unwrap();
        assert_eq!(q.segments(), 1);
    }

    #[test]
    fn plan_rejects_impossible_budget_and_bad_symbols() {
        let table = SymbolTable::new();
        assert!(matches!(
            SegmentedQuery::plan(&symbols(), &table, 8, 4),
            Err(QueryError::BudgetTooSmall { .. })
        ));
        assert!(matches!(
            SegmentedQuery::plan(&["No:Such"], &table, 2, 16),
            Err(QueryError::UnknownSymbol(_))
        ));
    }

    #[test]
    fn frames_carry_query_and_segment_tags() {
        let table = SymbolTable::new();
        let q = SegmentedQuery::plan(&symbols(), &table, 2, 6).unwrap();
        let dst = EthernetAddress::from_host_id(1);
        let src = EthernetAddress::from_host_id(2);
        let frames = q.frames(dst, src, 0xabcd);
        assert_eq!(frames.len(), q.segments());
        for (i, frame) in frames.iter().enumerate() {
            let parsed = tpp_wire::Frame::new_checked(&frame[..]).unwrap();
            let tpp = tpp_wire::tpp::TppPacket::new_checked(parsed.payload()).unwrap();
            let inner = tpp.inner_payload();
            assert_eq!(u32::from_be_bytes(inner[0..4].try_into().unwrap()), 0xabcd);
            assert_eq!(
                u32::from_be_bytes(inner[4..8].try_into().unwrap()),
                i as u32
            );
        }
    }

    /// Simulate execution + echo by hand and check reassembly.
    #[test]
    fn collector_reassembles_rows() {
        use tpp_wire::ethernet::Frame;
        use tpp_wire::tpp::{TppPacket, FLAG_ECHOED, FLAG_EXECUTED};

        let table = SymbolTable::new();
        let stats = ["Switch:SwitchID", "Queue:QueueSize", "Link:RX-Bytes"];
        let q = SegmentedQuery::plan(&stats, &table, 2, 4).unwrap(); // 2/probe
        assert_eq!(q.segments(), 2);
        let me = EthernetAddress::from_host_id(9);
        let dst = EthernetAddress::from_host_id(1);
        let mut collector = q.collector();

        let mut frames = q.frames(dst, me, 7);
        // "Execute": per hop, push one value per symbol in the segment;
        // hop h of segment s pushes value 100*s + 10*h + column.
        for (s, frame) in frames.iter_mut().enumerate() {
            let mut f = Frame::new_unchecked(&mut frame[..]);
            // swap src/dst as an echo would
            f.set_dst_addr(me);
            f.set_src_addr(dst);
            let mut tpp = TppPacket::new_unchecked(f.payload_mut());
            let cols = q.layout[s].len();
            for h in 0..2u32 {
                for c in 0..cols as u32 {
                    tpp.push_word(100 * s as u32 + 10 * h + c).unwrap();
                }
            }
            tpp.set_hop(2);
            tpp.set_flags(FLAG_EXECUTED | FLAG_ECHOED);
        }

        assert!(
            !collector.on_frame(&frames[0], me),
            "first segment incomplete"
        );
        assert_eq!(collector.pending(), 1);
        assert!(collector.on_frame(&frames[1], me), "second completes it");
        assert_eq!(collector.pending(), 0);
        let row = &collector.complete[0];
        assert_eq!(row.query_id, 7);
        assert_eq!(row.rows.len(), 2);
        assert_eq!(row.rows[0]["Switch:SwitchID"], 0);
        assert_eq!(row.rows[0]["Queue:QueueSize"], 1);
        assert_eq!(row.rows[0]["Link:RX-Bytes"], 100);
        assert_eq!(row.rows[1]["Switch:SwitchID"], 10);
        assert_eq!(row.rows[1]["Link:RX-Bytes"], 110);
        // Sanity: the symbols all exist in the static table too.
        assert!(Stat::by_symbol("Link:RX-Bytes").is_some());
    }

    #[test]
    fn duplicate_segments_are_idempotent() {
        let table = SymbolTable::new();
        let q = SegmentedQuery::plan(&["Switch:SwitchID"], &table, 1, 4).unwrap();
        let mut collector = q.collector();
        assert_eq!(collector.pending(), 0);
        // Garbage frames are ignored.
        assert!(!collector.on_frame(b"junk", EthernetAddress::from_host_id(0)));
    }
}
