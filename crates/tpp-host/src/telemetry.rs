//! Decoding fully-executed TPPs into per-hop telemetry.
//!
//! §2.1: "the end-host knows exactly how to interpret values in the
//! packet to obtain a detailed breakdown" — the interpretation key is the
//! program itself: a stack-mode program that pushes `k` words per hop
//! turns the stack into `hop` consecutive `k`-word records.

use tpp_telemetry::{TraceEvent, TraceEventKind, TraceSink};
use tpp_wire::tpp::TppPacket;
use tpp_wire::EthernetAddress;

/// One hop's worth of words, in program push order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopView {
    /// 0-based hop index along the path.
    pub hop: usize,
    /// The words the program recorded at this hop.
    pub words: Vec<u32>,
}

/// A decoded path sample: every hop's record, plus echo metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSample {
    /// Per-hop records in path order.
    pub hops: Vec<HopView>,
    /// Total hops the TPP executed on.
    pub hop_count: usize,
}

impl PathSample {
    /// Convenience: the `i`-th word of every hop (e.g. all queue sizes
    /// when the program pushes the queue size `i`-th).
    pub fn column(&self, i: usize) -> Vec<u32> {
        self.hops.iter().map(|h| h.words[i]).collect()
    }

    /// The hop with the maximum value in column `i`, if any hops exist.
    pub fn argmax_column(&self, i: usize) -> Option<&HopView> {
        self.hops.iter().max_by_key(|h| h.words[i])
    }

    /// The hop with the minimum value in column `i`.
    pub fn argmin_column(&self, i: usize) -> Option<&HopView> {
        self.hops.iter().min_by_key(|h| h.words[i])
    }

    /// Re-emit this sample into a trace sink as one
    /// [`TraceEventKind::HostHopRecord`] per hop, so host-decoded
    /// telemetry lands in the same stream as the switches' pipeline
    /// events (the way ndb consumes both). `t_ns` is the decode time and
    /// `seq` a caller-chosen sample number; `switch_id` is 0 — host
    /// events are not attributed to a switch.
    pub fn emit_trace(&self, sink: &mut dyn TraceSink, t_ns: u64, seq: u64) {
        for h in &self.hops {
            sink.record(TraceEvent {
                t_ns,
                switch_id: 0,
                seq,
                kind: TraceEventKind::HostHopRecord {
                    hop: h.hop as u32,
                    words: h.words.clone(),
                },
            });
        }
    }
}

/// Split an executed stack-mode TPP into per-hop records of
/// `words_per_hop` words.
///
/// Returns `None` when the stack length is not an exact multiple of
/// `words_per_hop` or disagrees with the hop counter — which means the
/// packet was corrupted, the program faulted mid-hop, or the caller's
/// `words_per_hop` is wrong. Callers treat `None` as a lost sample.
pub fn split_hops<T: AsRef<[u8]>>(tpp: &TppPacket<T>, words_per_hop: usize) -> Option<PathSample> {
    if words_per_hop == 0 {
        return None;
    }
    let words = tpp.stack_words();
    if !words.len().is_multiple_of(words_per_hop) {
        return None;
    }
    let hop_count = words.len() / words_per_hop;
    if hop_count != tpp.hop() as usize {
        return None;
    }
    let hops = words
        .chunks(words_per_hop)
        .enumerate()
        .map(|(hop, chunk)| HopView {
            hop,
            words: chunk.to_vec(),
        })
        .collect();
    Some(PathSample { hops, hop_count })
}

/// One-call receive path: if `frame` is an echoed TPP for `my_mac`,
/// decode it into per-hop records of `words_per_hop` words.
///
/// This is what a telemetry/rate-controller app calls in its
/// `on_frame`; anything that is not a well-formed echo of the expected
/// shape comes back as `None` and is simply not a sample.
pub fn decode_echo(
    frame: &[u8],
    my_mac: EthernetAddress,
    words_per_hop: usize,
) -> Option<PathSample> {
    let tpp = crate::probe::parse_echo(frame, my_mac)?;
    split_hops(&tpp, words_per_hop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_wire::tpp::{AddressingMode, TppBuilder};

    fn executed_tpp(stack: &[u32], hop: u8, capacity_words: usize) -> Vec<u8> {
        let mut bytes = TppBuilder::new(AddressingMode::Stack)
            .instructions(&[0])
            .memory_words(capacity_words)
            .build();
        let mut tpp = TppPacket::new_checked(&mut bytes[..]).unwrap();
        for w in stack {
            tpp.push_word(*w).unwrap();
        }
        tpp.set_hop(hop);
        bytes
    }

    #[test]
    fn splits_into_hop_records() {
        // 2 words/hop over 3 hops: (id, queue) pairs.
        let bytes = executed_tpp(&[1, 10, 2, 20, 3, 30], 3, 8);
        let tpp = TppPacket::new_checked(&bytes[..]).unwrap();
        let sample = split_hops(&tpp, 2).unwrap();
        assert_eq!(sample.hop_count, 3);
        assert_eq!(
            sample.hops[1],
            HopView {
                hop: 1,
                words: vec![2, 20]
            }
        );
        assert_eq!(sample.column(1), vec![10, 20, 30]);
        assert_eq!(sample.argmax_column(1).unwrap().hop, 2);
        assert_eq!(sample.argmin_column(1).unwrap().words, vec![1, 10]);
    }

    #[test]
    fn rejects_partial_hops() {
        let bytes = executed_tpp(&[1, 10, 2], 2, 8);
        let tpp = TppPacket::new_checked(&bytes[..]).unwrap();
        assert!(split_hops(&tpp, 2).is_none(), "stack not a multiple");
    }

    #[test]
    fn rejects_hop_counter_mismatch() {
        // 4 words at 2/hop = 2 hops, but counter says 3 (a fault skipped
        // pushes on some hop).
        let bytes = executed_tpp(&[1, 10, 2, 20], 3, 8);
        let tpp = TppPacket::new_checked(&bytes[..]).unwrap();
        assert!(split_hops(&tpp, 2).is_none());
    }

    #[test]
    fn rejects_zero_words_per_hop() {
        let bytes = executed_tpp(&[], 0, 4);
        let tpp = TppPacket::new_checked(&bytes[..]).unwrap();
        assert!(split_hops(&tpp, 0).is_none());
    }

    #[test]
    fn emits_one_host_event_per_hop() {
        use tpp_telemetry::VecSink;

        let bytes = executed_tpp(&[1, 10, 2, 20, 3, 30], 3, 8);
        let tpp = TppPacket::new_checked(&bytes[..]).unwrap();
        let sample = split_hops(&tpp, 2).unwrap();
        let mut sink = VecSink::default();
        sample.emit_trace(&mut sink, 5_000, 42);
        assert_eq!(sink.events.len(), 3);
        assert!(sink
            .events
            .iter()
            .all(|e| e.t_ns == 5_000 && e.seq == 42 && e.switch_id == 0));
        assert_eq!(
            sink.events[2].kind,
            TraceEventKind::HostHopRecord {
                hop: 2,
                words: vec![3, 30]
            }
        );
    }

    #[test]
    fn empty_path_is_valid() {
        let bytes = executed_tpp(&[], 0, 4);
        let tpp = TppPacket::new_checked(&bytes[..]).unwrap();
        let sample = split_hops(&tpp, 2).unwrap();
        assert_eq!(sample.hop_count, 0);
        assert!(sample.hops.is_empty());
        assert!(sample.argmax_column(0).is_none());
    }
}
