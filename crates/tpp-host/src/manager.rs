//! Reliable probe delivery over an unreliable network.
//!
//! TPPs ride ordinary packets, and §2.2's position is that reliability is
//! an *end-host* concern: "the TPP layer is free to implement its own
//! reliability semantics". [`ProbeManager`] is that layer — a small state
//! machine every probing app embeds:
//!
//! * **Nonces.** Each tracked probe gets an 8-byte nonce appended after
//!   the TPP section (it extends the inner payload, so switches and the
//!   echo path carry it untouched). Echoes are matched back to their
//!   probe by nonce, which makes duplicated or stale echoes detectable.
//! * **Timeout + bounded retries.** A probe whose echo does not arrive
//!   within the policy timeout is re-sent (the identical frame, same
//!   nonce) up to [`RetryPolicy::max_retries`] times with exponential
//!   backoff and deterministic per-nonce jitter, then reported expired.
//! * **Boot-epoch tracking.** Hosts that read `Switch:BootEpoch` feed it
//!   to [`ProbeManager::note_epoch`]; a change means the switch rebooted
//!   and lost SRAM, so cached state about it must be re-seeded.
//!
//! Everything is deterministic: nonces derive from the host id and a
//! counter, jitter derives from the nonce, and retries are driven by the
//! simulator's timer — no wall clock, no entropy.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use tpp_netsim::HostCtx;
use tpp_telemetry::{SharedSink, TraceEvent, TraceEventKind, TraceSink};

use crate::probe::parse_echo;

/// Length of the nonce appended to tracked probe frames.
pub const NONCE_LEN: usize = 8;

/// Timer token a port-0 manager arms via [`HostCtx::set_timer`]. Apps
/// route tokens matching [`ProbeManager::is_timer`] to
/// [`ProbeManager::on_timer`]; it is deliberately large so it cannot
/// collide with small app-defined tokens. A manager bound to NIC `p`
/// (see [`ProbeManager::with_port`]) XORs `p` into bits 32..48 so that
/// apps running one manager per path can route each wake-up to exactly
/// one manager ([`ProbeManager::timer_port`]) — fanning a shared token
/// out to every manager would let each re-arm per fire and multiply
/// timer events.
pub const PROBE_TIMER_TOKEN: u64 = 0x5052_4f42_4d47_0001; // "PROBMG"+1

/// Bit span of [`PROBE_TIMER_TOKEN`] that carries the manager's port.
const TIMER_PORT_MASK: u64 = 0xFFFF_u64 << 32;

/// How many delivered nonces are remembered for duplicate detection.
const COMPLETED_MEMORY: usize = 1024;

/// Retry behavior for tracked probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Time to wait for the first echo before re-sending.
    pub timeout_ns: u64,
    /// Re-sends after the initial transmission; 0 means a single shot
    /// whose loss is reported as a timeout.
    pub max_retries: u32,
    /// Deterministic jitter added to each deadline, as a per-mille
    /// fraction of the backoff interval (250 = up to +25%). Spreads
    /// retries from hosts that probe in lockstep.
    pub jitter_permille: u16,
}

impl RetryPolicy {
    /// Backoff interval for a given attempt: `timeout * 2^attempt` plus
    /// per-(nonce, attempt) jitter. The shift is capped so pathological
    /// retry counts cannot overflow.
    fn backoff_of(policy: RetryPolicy, nonce: u64, attempt: u32) -> u64 {
        let base = policy.timeout_ns.saturating_mul(1 << attempt.min(16));
        let span = base / 1000 * u64::from(policy.jitter_permille);
        let jitter = if span == 0 {
            0
        } else {
            splitmix64(nonce ^ u64::from(attempt)) % span
        };
        base + jitter
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout_ns: 50_000_000,
            max_retries: 4,
            jitter_permille: 250,
        }
    }
}

/// Classification of an incoming frame by [`ProbeManager::on_frame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeDelivery {
    /// Not an echoed TPP for this host (or not nonce-tracked).
    NotAProbe,
    /// First echo of an outstanding probe: process it.
    Fresh {
        /// The probe's nonce.
        nonce: u64,
    },
    /// First echo of a probe that already expired (retries exhausted).
    /// Still exactly-once — later copies come back `Duplicate` — but the
    /// app may have started recovering. Apps for which stale data is
    /// still valid (e.g. periodic telemetry) treat this like `Fresh`;
    /// state machines that acted on the expiry drop it.
    Late {
        /// The probe's nonce.
        nonce: u64,
    },
    /// An echo whose nonce is not outstanding — a duplicated, stale, or
    /// already-answered probe. Drop it.
    Duplicate {
        /// The echo's nonce.
        nonce: u64,
    },
}

/// Counters exposed for tests and experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Probes tracked (initial transmissions).
    pub sent: u64,
    /// Re-transmissions after a timeout.
    pub retries: u64,
    /// Probes abandoned after exhausting retries.
    pub timeouts: u64,
    /// Fresh echoes delivered to the app.
    pub delivered: u64,
    /// Duplicate/stale echoes suppressed.
    pub duplicates: u64,
    /// Echoes that arrived after their probe expired (first copies).
    pub late: u64,
    /// Boot-epoch changes observed via [`ProbeManager::note_epoch`].
    pub epoch_mismatches: u64,
}

#[derive(Debug)]
struct Outstanding {
    frame: Vec<u8>,
    attempt: u32,
    deadline_ns: u64,
}

/// Per-probe timeout/retry/dedup engine. See the module docs.
#[derive(Debug, Default)]
pub struct ProbeManager {
    policy: RetryPolicy,
    /// NIC all tracked probes (and retries) transmit on; 0 unless set
    /// with [`ProbeManager::with_port`]. Bonding apps run one manager
    /// per path.
    port: u16,
    /// Extra nonce-stream discriminator (see
    /// [`ProbeManager::with_salt`]); 0 keeps the historical nonces.
    salt: u64,
    nonce_counter: u64,
    outstanding: BTreeMap<u64, Outstanding>,
    expired: BTreeSet<u64>,
    completed: BTreeSet<u64>,
    completed_order: VecDeque<u64>,
    epochs: BTreeMap<u32, u32>,
    armed_until: Option<u64>,
    trace: Option<SharedSink>,
    stats: ProbeStats,
}

/// splitmix64 — the standard 64-bit finalizer; deterministic and cheap.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ProbeManager {
    /// A manager with the given policy and no trace sink.
    pub fn new(policy: RetryPolicy) -> Self {
        ProbeManager {
            policy,
            ..ProbeManager::default()
        }
    }

    /// Attach a sink; the manager records `ProbeRetry`, `ProbeTimeout`
    /// and `EpochMismatch` trace events into it.
    pub fn set_trace(&mut self, sink: SharedSink) {
        self.trace = Some(sink);
    }

    /// Send all tracked probes (and their retries) out of NIC `port` of
    /// a multi-homed host instead of port 0.
    pub fn with_port(mut self, port: u16) -> Self {
        self.port = port;
        self
    }

    /// Mix `salt` into the nonce stream. Two managers on the *same host*
    /// (one per bonded path) must use distinct salts so their nonces
    /// never collide; the default salt 0 preserves the single-manager
    /// nonce sequence.
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// The NIC this manager transmits on.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The retry policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Counters.
    pub fn stats(&self) -> ProbeStats {
        self.stats
    }

    /// Probes currently awaiting an echo.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// True when `token` is a manager service timer (any port).
    pub fn is_timer(token: u64) -> bool {
        (token ^ PROBE_TIMER_TOKEN) & !TIMER_PORT_MASK == 0
    }

    /// The NIC port encoded in a service-timer token (meaningful only
    /// when [`ProbeManager::is_timer`] holds). Multi-manager apps use it
    /// to route the wake-up to the one manager that armed it.
    pub fn timer_port(token: u64) -> u16 {
        (((token ^ PROBE_TIMER_TOKEN) & TIMER_PORT_MASK) >> 32) as u16
    }

    /// This manager's own service-timer token.
    fn timer_token(&self) -> u64 {
        PROBE_TIMER_TOKEN ^ ((self.port as u64) << 32)
    }

    /// The nonce carried by a tracked frame (its trailing 8 bytes).
    pub fn frame_nonce(frame: &[u8]) -> Option<u64> {
        let tail = frame.len().checked_sub(NONCE_LEN)?;
        let mut b = [0u8; NONCE_LEN];
        b.copy_from_slice(&frame[tail..]);
        Some(u64::from_be_bytes(b))
    }

    /// Append a nonce to `frame`, send it, and track it for retry.
    /// Returns the nonce.
    pub fn track(&mut self, mut frame: Vec<u8>, ctx: &mut HostCtx<'_>) -> u64 {
        self.nonce_counter += 1;
        // host_id+1 keeps host 0's nonces distinct from a raw counter;
        // the salt (shifted clear of the counter bits) separates
        // same-host managers. Salt 0 reproduces the historical stream.
        let nonce = splitmix64(
            ((ctx.host_id().0 as u64 + 1) << 40) ^ (self.salt << 20) ^ self.nonce_counter,
        );
        frame.extend_from_slice(&nonce.to_be_bytes());
        let deadline_ns = ctx.now() + self.backoff(nonce, 0);
        ctx.send_on(self.port, frame.clone());
        self.outstanding.insert(
            nonce,
            Outstanding {
                frame,
                attempt: 0,
                deadline_ns,
            },
        );
        self.stats.sent += 1;
        self.arm(deadline_ns, ctx);
        nonce
    }

    /// Forget all outstanding probes without counting them as timeouts
    /// (used when a new probing round supersedes the last).
    pub fn cancel_all(&mut self) {
        for (nonce, _) in std::mem::take(&mut self.outstanding) {
            self.remember_completed(nonce);
        }
    }

    /// Classify an incoming frame. `Fresh` is returned exactly once per
    /// tracked probe; duplicated and stale echoes come back `Duplicate`.
    pub fn on_frame(&mut self, frame: &[u8], ctx: &mut HostCtx<'_>) -> ProbeDelivery {
        if parse_echo(frame, ctx.mac()).is_none() {
            return ProbeDelivery::NotAProbe;
        }
        let Some(nonce) = Self::frame_nonce(frame) else {
            return ProbeDelivery::NotAProbe;
        };
        if self.outstanding.remove(&nonce).is_some() {
            self.remember_completed(nonce);
            self.stats.delivered += 1;
            return ProbeDelivery::Fresh { nonce };
        }
        if self.expired.remove(&nonce) {
            self.remember_completed(nonce);
            self.stats.late += 1;
            return ProbeDelivery::Late { nonce };
        }
        if self.completed.contains(&nonce) {
            self.stats.duplicates += 1;
            return ProbeDelivery::Duplicate { nonce };
        }
        // An echoed TPP for us without a nonce we issued — e.g. an app's
        // untracked probe. Let the app look at it.
        ProbeDelivery::NotAProbe
    }

    /// Service the retry clock: re-send due probes, expire exhausted
    /// ones. Returns the nonces that gave up (the app decides whether to
    /// re-issue a fresh probe). Call from `on_timer` when
    /// [`ProbeManager::is_timer`] matches.
    pub fn on_timer(&mut self, ctx: &mut HostCtx<'_>) -> Vec<u64> {
        self.armed_until = None;
        let now = ctx.now();
        let due: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, o)| o.deadline_ns <= now)
            .map(|(n, _)| *n)
            .collect();
        let mut expired = Vec::new();
        for nonce in due {
            let o = self.outstanding.get_mut(&nonce).expect("due nonce");
            if o.attempt < self.policy.max_retries {
                o.attempt += 1;
                let attempt = o.attempt;
                let backoff = RetryPolicy::backoff_of(self.policy, nonce, attempt);
                o.deadline_ns = now + backoff;
                let frame = o.frame.clone();
                ctx.send_on(self.port, frame);
                self.stats.retries += 1;
                self.emit(ctx.now(), 0, TraceEventKind::ProbeRetry { nonce, attempt });
            } else {
                let retries = o.attempt;
                self.outstanding.remove(&nonce);
                self.expired.insert(nonce);
                // Bound the expired set the same way as the completed
                // one: echoes older than the memory window are dropped
                // as duplicates at worst.
                if self.expired.len() > COMPLETED_MEMORY {
                    let oldest = self.expired.iter().next().copied();
                    if let Some(old) = oldest {
                        self.expired.remove(&old);
                    }
                }
                self.stats.timeouts += 1;
                self.emit(
                    ctx.now(),
                    0,
                    TraceEventKind::ProbeTimeout { nonce, retries },
                );
                expired.push(nonce);
            }
        }
        if let Some(next) = self.outstanding.values().map(|o| o.deadline_ns).min() {
            self.arm(next, ctx);
        }
        expired
    }

    /// Record a switch's boot epoch as read from `Switch:BootEpoch`.
    /// Returns `true` when it differs from the last recorded value — the
    /// switch rebooted, and any cached state about it is stale.
    pub fn note_epoch(&mut self, switch_id: u32, epoch: u32, ctx: &mut HostCtx<'_>) -> bool {
        match self.epochs.insert(switch_id, epoch) {
            Some(prev) if prev != epoch => {
                self.stats.epoch_mismatches += 1;
                self.emit(
                    ctx.now(),
                    switch_id,
                    TraceEventKind::EpochMismatch {
                        expected: prev,
                        observed: epoch,
                    },
                );
                true
            }
            _ => false,
        }
    }

    /// The last epoch recorded for `switch_id`, if any.
    pub fn epoch(&self, switch_id: u32) -> Option<u32> {
        self.epochs.get(&switch_id).copied()
    }

    fn backoff(&self, nonce: u64, attempt: u32) -> u64 {
        RetryPolicy::backoff_of(self.policy, nonce, attempt)
    }

    /// Arm the service timer for `deadline_ns` unless an earlier or
    /// equal wake-up is already pending. Timers cannot be cancelled, so
    /// a stale early wake-up simply finds nothing due and re-arms.
    fn arm(&mut self, deadline_ns: u64, ctx: &mut HostCtx<'_>) {
        if self.armed_until.is_some_and(|t| t <= deadline_ns) {
            return;
        }
        self.armed_until = Some(deadline_ns);
        let delay = deadline_ns.saturating_sub(ctx.now()).max(1);
        ctx.set_timer(delay, self.timer_token());
    }

    fn remember_completed(&mut self, nonce: u64) {
        if self.completed.insert(nonce) {
            self.completed_order.push_back(nonce);
            if self.completed_order.len() > COMPLETED_MEMORY {
                if let Some(old) = self.completed_order.pop_front() {
                    self.completed.remove(&old);
                }
            }
        }
    }

    fn emit(&mut self, t_ns: u64, switch_id: u32, kind: TraceEventKind) {
        if let Some(sink) = &mut self.trace {
            sink.record(TraceEvent {
                t_ns,
                switch_id,
                seq: 0,
                kind,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbeBuilder;
    use crate::EchoReceiver;
    use tpp_asic::AsicConfig;
    use tpp_isa::assemble;
    use tpp_netsim::RunLimit;
    use tpp_netsim::{time, Endpoint, HostApp, HostCtx, NetworkBuilder};
    use tpp_wire::EthernetAddress;

    /// Sends one tracked probe; counts fresh and duplicate echoes and
    /// expirations.
    struct Tracker {
        dst: EthernetAddress,
        mgr: ProbeManager,
        fresh: u32,
        dup: u32,
        expired: u32,
    }

    impl Tracker {
        fn new(dst: EthernetAddress, policy: RetryPolicy) -> Self {
            Tracker {
                dst,
                mgr: ProbeManager::new(policy),
                fresh: 0,
                dup: 0,
                expired: 0,
            }
        }

        fn probe_frame(&self, ctx: &HostCtx<'_>) -> Vec<u8> {
            let program = assemble("PUSH [Switch:SwitchID]").unwrap();
            ProbeBuilder::stack(&program, 2).build_frame(self.dst, ctx.mac())
        }
    }

    impl HostApp for Tracker {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            let frame = self.probe_frame(ctx);
            self.mgr.track(frame, ctx);
        }

        fn on_timer(&mut self, token: u64, ctx: &mut HostCtx<'_>) {
            if ProbeManager::is_timer(token) {
                self.expired += self.mgr.on_timer(ctx).len() as u32;
            }
        }

        fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
            match self.mgr.on_frame(&frame, ctx) {
                ProbeDelivery::Fresh { .. } | ProbeDelivery::Late { .. } => self.fresh += 1,
                ProbeDelivery::Duplicate { .. } => self.dup += 1,
                ProbeDelivery::NotAProbe => {}
            }
        }
    }

    fn two_hosts(policy: RetryPolicy) -> (tpp_netsim::Simulator, tpp_netsim::HostId) {
        let mut net = NetworkBuilder::new();
        let s = net.add_switch(AsicConfig::with_ports(1, 2));
        let h0 = net.add_host(
            Box::new(Tracker::new(EthernetAddress::from_host_id(1), policy)),
            1_000_000,
        );
        let h1 = net.add_host(Box::new(EchoReceiver::default()), 1_000_000);
        net.connect(Endpoint::host(h0), Endpoint::switch(s, 0), time::micros(1));
        net.connect(Endpoint::host(h1), Endpoint::switch(s, 1), time::micros(1));
        let mut sim = net.build();
        sim.populate_l2();
        (sim, h0)
    }

    #[test]
    fn clean_network_delivers_fresh_exactly_once() {
        let (mut sim, h0) = two_hosts(RetryPolicy::default());
        sim.run(RunLimit::Until(time::secs(1)));
        let t = sim.host_app::<Tracker>(h0);
        assert_eq!(t.fresh, 1);
        assert_eq!(t.dup, 0);
        assert_eq!(t.expired, 0);
        assert_eq!(t.mgr.stats().retries, 0);
        assert_eq!(t.mgr.outstanding(), 0);
    }

    #[test]
    fn total_loss_exhausts_retries_then_expires() {
        let policy = RetryPolicy {
            timeout_ns: time::millis(10),
            max_retries: 2,
            jitter_permille: 100,
        };
        let (mut sim, h0) = two_hosts(policy);
        // Lose everything the host transmits.
        let hep = Endpoint::host(h0);
        assert_eq!(sim.set_link_loss(hep, 1000), 1000);
        sim.run(RunLimit::Until(time::secs(2)));
        let t = sim.host_app::<Tracker>(h0);
        assert_eq!(t.fresh, 0);
        assert_eq!(t.expired, 1);
        assert_eq!(t.mgr.stats().retries, 2, "bounded retries");
        assert_eq!(t.mgr.stats().timeouts, 1);
        assert_eq!(t.mgr.outstanding(), 0);
    }

    #[test]
    fn backoff_grows_and_is_deterministic() {
        let mgr = ProbeManager::new(RetryPolicy {
            timeout_ns: 1_000,
            max_retries: 8,
            jitter_permille: 250,
        });
        let b0 = mgr.backoff(42, 0);
        let b1 = mgr.backoff(42, 1);
        let b2 = mgr.backoff(42, 2);
        assert!((1_000..=1_250).contains(&b0));
        assert!((2_000..=2_500).contains(&b1));
        assert!((4_000..=5_000).contains(&b2));
        assert_eq!(b1, mgr.backoff(42, 1), "same inputs, same jitter");
        assert_ne!(
            mgr.backoff(42, 1) - 2_000,
            mgr.backoff(43, 1) - 2_000,
            "different nonces jitter differently"
        );
    }

    #[test]
    fn frame_nonce_reads_trailing_bytes() {
        let mut frame = vec![0u8; 20];
        frame.extend_from_slice(&0xdead_beef_cafe_f00du64.to_be_bytes());
        assert_eq!(
            ProbeManager::frame_nonce(&frame),
            Some(0xdead_beef_cafe_f00d)
        );
        assert_eq!(ProbeManager::frame_nonce(&[1, 2, 3]), None);
    }
}
