//! Probe-driven NIC bonding: an adaptive multi-path scheduler whose
//! *only* link-quality signal is TPP telemetry.
//!
//! A multi-homed host (§2 end-host stack) runs one [`crate::ProbeManager`]
//! per NIC, each periodically tracking a `bonding_collect()` probe down
//! its path. The echoes carry per-hop queue depth and TX utilization
//! read in-band by the switches; the scheduler folds them into per-path
//! EWMAs and drives three decisions:
//!
//! * **Weighting** — data frames spread over the paths by smooth
//!   weighted round-robin, weights derived from the queue EWMA (an
//!   emptier path gets proportionally more credit).
//! * **Hysteresis** — a path enters [`PathHealth::Degraded`] when its
//!   queue EWMA crosses `degrade_queue_bytes` and only returns to
//!   `Good` below *half* that threshold, so a path oscillating around
//!   the line doesn't flap the schedule.
//! * **Failover** — `down_after_misses` consecutive probe losses, or a
//!   switch boot-epoch change anywhere on the path, drop it to
//!   [`PathHealth::Down`] immediately: weight zero, and (optionally)
//!   frames that would have used it are duplicated onto the best
//!   healthy path. `up_after_hits` consecutive fresh echoes bring it
//!   back.
//!
//! All state is integer arithmetic fed only by probe events, so a
//! seeded simulation drives the scheduler bit-identically at any shard
//! count. Every health transition is logged as a [`HealthEvent`] and
//! each path keeps [`RingSeries`] of its queue/utilization samples for
//! the observability plane.

use tpp_netsim::RingSeries;

/// A path's current standing in the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathHealth {
    /// Probes are fresh and the queue EWMA is below the degrade
    /// threshold: full weight.
    Good,
    /// Queue EWMA crossed the threshold: minimum weight, and traffic
    /// sent here may be duplicated onto a `Good` path.
    Degraded,
    /// Probes are timing out (or the path's switch rebooted): weight
    /// zero until `up_after_hits` fresh echoes arrive.
    Down,
}

impl PathHealth {
    /// Short display name for dashboards and logs. `Down` shouts so a
    /// dead path stands out in a monochrome fleet table.
    pub fn name(self) -> &'static str {
        match self {
            PathHealth::Good => "good",
            PathHealth::Degraded => "degraded",
            PathHealth::Down => "DOWN",
        }
    }
}

/// One health transition, for the failover timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthEvent {
    /// Simulation time of the transition.
    pub t_ns: u64,
    /// Which path changed.
    pub path: usize,
    /// Health before the transition.
    pub from: PathHealth,
    /// Health after the transition.
    pub to: PathHealth,
}

/// Tuning knobs for [`BondScheduler`].
#[derive(Debug, Clone)]
pub struct BondConfig {
    /// Number of bonded paths (NICs).
    pub paths: usize,
    /// Queue-EWMA threshold (bytes) above which a path is `Degraded`;
    /// recovery requires dropping below half of it.
    pub degrade_queue_bytes: u64,
    /// Consecutive probe losses before a path is `Down`.
    pub down_after_misses: u32,
    /// Consecutive fresh echoes before a `Down` path is `Good` again.
    pub up_after_hits: u32,
    /// EWMA shift: `ewma += (sample - ewma) >> shift`. Smaller reacts
    /// faster.
    pub ewma_shift: u32,
    /// Duplicate frames scheduled onto a `Degraded` path to the best
    /// healthy path (the receiver dedups).
    pub duplicate_on_degraded: bool,
    /// Capacity of each per-path telemetry [`RingSeries`].
    pub series_capacity: usize,
}

impl Default for BondConfig {
    fn default() -> Self {
        BondConfig {
            paths: 2,
            degrade_queue_bytes: 8 * 1024,
            down_after_misses: 3,
            up_after_hits: 2,
            ewma_shift: 2,
            duplicate_on_degraded: true,
            series_capacity: 128,
        }
    }
}

/// Per-path scheduler state.
#[derive(Debug)]
struct PathState {
    health: PathHealth,
    ewma_queue: u64,
    ewma_util: u64,
    miss_streak: u32,
    hit_streak: u32,
    /// Smooth-WRR credit.
    credit: i64,
    samples: u64,
    losses: u64,
    queue_series: RingSeries,
    util_series: RingSeries,
}

impl PathState {
    fn new(cap: usize) -> Self {
        PathState {
            health: PathHealth::Good,
            ewma_queue: 0,
            ewma_util: 0,
            miss_streak: 0,
            hit_streak: 0,
            credit: 0,
            samples: 0,
            losses: 0,
            queue_series: RingSeries::new(cap),
            util_series: RingSeries::new(cap),
        }
    }
}

/// The bonding scheduler: probe telemetry in, path choices out.
#[derive(Debug)]
pub struct BondScheduler {
    cfg: BondConfig,
    paths: Vec<PathState>,
    events: Vec<HealthEvent>,
    /// Fallback round-robin cursor for the all-Down case.
    rr_cursor: usize,
}

impl BondScheduler {
    /// A scheduler over `cfg.paths` paths, all initially `Good`.
    pub fn new(cfg: BondConfig) -> Self {
        assert!(cfg.paths >= 1, "a bond needs at least one path");
        assert!(cfg.down_after_misses >= 1 && cfg.up_after_hits >= 1);
        let paths = (0..cfg.paths)
            .map(|_| PathState::new(cfg.series_capacity))
            .collect();
        BondScheduler {
            cfg,
            paths,
            events: Vec::new(),
            rr_cursor: 0,
        }
    }

    /// Number of bonded paths.
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// A path's current health.
    pub fn health(&self, path: usize) -> PathHealth {
        self.paths[path].health
    }

    /// The health-transition log, in event order.
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// Queue-depth EWMA (bytes) for `path`.
    pub fn ewma_queue(&self, path: usize) -> u64 {
        self.paths[path].ewma_queue
    }

    /// TX-utilization EWMA (permille) for `path`.
    pub fn ewma_util(&self, path: usize) -> u64 {
        self.paths[path].ewma_util
    }

    /// Fresh probe samples folded in for `path`.
    pub fn samples(&self, path: usize) -> u64 {
        self.paths[path].samples
    }

    /// Probe losses charged to `path`.
    pub fn losses(&self, path: usize) -> u64 {
        self.paths[path].losses
    }

    /// The recorded queue-depth series for `path`.
    pub fn queue_series(&self, path: usize) -> &RingSeries {
        &self.paths[path].queue_series
    }

    /// The recorded utilization series for `path`.
    pub fn util_series(&self, path: usize) -> &RingSeries {
        &self.paths[path].util_series
    }

    fn transition(&mut self, t_ns: u64, path: usize, to: PathHealth) {
        let from = self.paths[path].health;
        if from == to {
            return;
        }
        self.paths[path].health = to;
        self.events.push(HealthEvent {
            t_ns,
            path,
            from,
            to,
        });
    }

    /// Fold in one fresh probe echo from `path`: the worst (largest)
    /// queue depth and utilization seen along it.
    pub fn on_sample(&mut self, t_ns: u64, path: usize, queue_bytes: u64, util_permille: u64) {
        let shift = self.cfg.ewma_shift;
        let thr = self.cfg.degrade_queue_bytes;
        {
            let p = &mut self.paths[path];
            p.samples += 1;
            p.miss_streak = 0;
            // Signed EWMA step so the average can come back down.
            p.ewma_queue = (p.ewma_queue as i64
                + ((queue_bytes as i64 - p.ewma_queue as i64) >> shift))
                as u64;
            p.ewma_util = (p.ewma_util as i64
                + ((util_permille as i64 - p.ewma_util as i64) >> shift))
                as u64;
            p.queue_series.offer(t_ns, p.ewma_queue);
            p.util_series.offer(t_ns, p.ewma_util);
        }
        match self.paths[path].health {
            PathHealth::Down => {
                self.paths[path].hit_streak += 1;
                if self.paths[path].hit_streak >= self.cfg.up_after_hits {
                    self.paths[path].hit_streak = 0;
                    self.transition(t_ns, path, PathHealth::Good);
                }
            }
            PathHealth::Good => {
                if self.paths[path].ewma_queue > thr {
                    self.transition(t_ns, path, PathHealth::Degraded);
                }
            }
            PathHealth::Degraded => {
                // Hysteresis: recover only well below the threshold.
                if self.paths[path].ewma_queue < thr / 2 {
                    self.transition(t_ns, path, PathHealth::Good);
                }
            }
        }
    }

    /// Charge a probe timeout to `path`; enough in a row force `Down`.
    pub fn on_probe_loss(&mut self, t_ns: u64, path: usize) {
        let p = &mut self.paths[path];
        p.losses += 1;
        p.miss_streak += 1;
        p.hit_streak = 0;
        if p.miss_streak >= self.cfg.down_after_misses {
            self.transition(t_ns, path, PathHealth::Down);
        }
    }

    /// A switch on `path` rebooted (its boot epoch changed): its state
    /// — and any in-flight frames — are gone, so fail over at once.
    pub fn on_epoch_change(&mut self, t_ns: u64, path: usize) {
        self.paths[path].hit_streak = 0;
        self.transition(t_ns, path, PathHealth::Down);
    }

    /// Scheduling weight for a path: 0 when `Down`, minimum when
    /// `Degraded`, and up to 100 for an idle `Good` path (an emptier
    /// queue EWMA earns proportionally more).
    fn weight(&self, path: usize) -> i64 {
        let p = &self.paths[path];
        match p.health {
            PathHealth::Down => 0,
            PathHealth::Degraded => 1,
            PathHealth::Good => {
                let d = self.cfg.degrade_queue_bytes;
                // 100 at ewma 0, tapering toward ~50 at the threshold.
                1 + (99 * d / (d + p.ewma_queue)) as i64
            }
        }
    }

    /// Pick the path for the next data frame (smooth weighted
    /// round-robin). When every path is `Down`, falls back to plain
    /// round-robin — the frame is probably lost either way, but the
    /// retransmit layer above still gets a deterministic choice.
    pub fn pick(&mut self) -> usize {
        let weights: Vec<i64> = (0..self.paths.len()).map(|i| self.weight(i)).collect();
        let total: i64 = weights.iter().sum();
        if total == 0 {
            let pick = self.rr_cursor % self.paths.len();
            self.rr_cursor = self.rr_cursor.wrapping_add(1);
            return pick;
        }
        for (p, &w) in self.paths.iter_mut().zip(&weights) {
            p.credit += w;
        }
        // argmax over credits (first index wins ties → deterministic)
        let mut best = 0;
        for i in 1..self.paths.len() {
            if self.paths[i].credit > self.paths[best].credit {
                best = i;
            }
        }
        self.paths[best].credit -= total;
        best
    }

    /// Where to send a redundant copy of a frame scheduled on
    /// `primary`, if redundancy is warranted: the healthiest *other*
    /// path when `primary` is `Degraded` (or `Down` via the fallback
    /// picker) and duplication is enabled.
    pub fn duplicate_target(&self, primary: usize) -> Option<usize> {
        if !self.cfg.duplicate_on_degraded || self.paths[primary].health == PathHealth::Good {
            return None;
        }
        (0..self.paths.len())
            .filter(|&i| i != primary && self.paths[i].health == PathHealth::Good)
            .max_by_key(|&i| self.weight(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(paths: usize) -> BondScheduler {
        BondScheduler::new(BondConfig {
            paths,
            ..BondConfig::default()
        })
    }

    #[test]
    fn equal_paths_split_evenly() {
        let mut s = sched(2);
        let mut counts = [0usize; 2];
        for _ in 0..100 {
            counts[s.pick()] += 1;
        }
        assert_eq!(counts, [50, 50]);
    }

    #[test]
    fn loaded_path_gets_less_traffic() {
        let mut s = sched(2);
        // Path 1 carries a standing queue well below the degrade line.
        for t in 0..32 {
            s.on_sample(t, 0, 0, 0);
            s.on_sample(t, 1, 4096, 500);
        }
        assert_eq!(s.health(1), PathHealth::Good);
        let mut counts = [0usize; 2];
        for _ in 0..300 {
            counts[s.pick()] += 1;
        }
        assert!(
            counts[0] > counts[1] + 50,
            "idle path should dominate: {counts:?}"
        );
    }

    #[test]
    fn misses_drive_down_and_hits_recover() {
        let mut s = sched(2);
        s.on_probe_loss(10, 0);
        s.on_probe_loss(20, 0);
        assert_eq!(s.health(0), PathHealth::Good, "below miss threshold");
        s.on_probe_loss(30, 0);
        assert_eq!(s.health(0), PathHealth::Down);
        // All traffic now avoids path 0.
        for _ in 0..20 {
            assert_eq!(s.pick(), 1);
        }
        s.on_sample(40, 0, 0, 0);
        assert_eq!(s.health(0), PathHealth::Down, "one hit is not enough");
        s.on_sample(50, 0, 0, 0);
        assert_eq!(s.health(0), PathHealth::Good);
        let ev = s.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(
            (ev[0].t_ns, ev[0].path, ev[0].to),
            (30, 0, PathHealth::Down)
        );
        assert_eq!(
            (ev[1].t_ns, ev[1].path, ev[1].to),
            (50, 0, PathHealth::Good)
        );
    }

    #[test]
    fn queue_hysteresis_degrades_and_recovers() {
        let mut s = sched(2);
        let thr = BondConfig::default().degrade_queue_bytes;
        for t in 0..64 {
            s.on_sample(t, 0, thr * 4, 900);
        }
        assert_eq!(s.health(0), PathHealth::Degraded);
        // Hovering just under the threshold must NOT flip it back.
        for t in 64..80 {
            s.on_sample(t, 0, thr - 1, 900);
        }
        assert_eq!(s.health(0), PathHealth::Degraded, "hysteresis holds");
        for t in 80..160 {
            s.on_sample(t, 0, 0, 0);
        }
        assert_eq!(s.health(0), PathHealth::Good);
    }

    #[test]
    fn epoch_change_fails_over_immediately() {
        let mut s = sched(2);
        s.on_epoch_change(1000, 0);
        assert_eq!(s.health(0), PathHealth::Down);
        assert_eq!(s.events().len(), 1);
        assert_eq!(s.events()[0].from, PathHealth::Good);
    }

    #[test]
    fn degraded_path_duplicates_to_best_good_path() {
        let mut s = BondScheduler::new(BondConfig {
            paths: 3,
            ..BondConfig::default()
        });
        let thr = BondConfig::default().degrade_queue_bytes;
        for t in 0..64 {
            s.on_sample(t, 0, thr * 4, 900);
            s.on_sample(t, 1, 2048, 100);
            s.on_sample(t, 2, 0, 0);
        }
        assert_eq!(s.health(0), PathHealth::Degraded);
        assert_eq!(s.duplicate_target(0), Some(2), "emptiest good path");
        assert_eq!(s.duplicate_target(2), None, "good primary: no copy");
    }

    #[test]
    fn all_down_falls_back_to_round_robin() {
        let mut s = sched(2);
        for p in 0..2 {
            for _ in 0..3 {
                s.on_probe_loss(0, p);
            }
        }
        assert_eq!(s.health(0), PathHealth::Down);
        assert_eq!(s.health(1), PathHealth::Down);
        let picks: Vec<usize> = (0..4).map(|_| s.pick()).collect();
        assert_eq!(picks, vec![0, 1, 0, 1]);
    }

    #[test]
    fn duplicate_disabled_by_config() {
        let mut s = BondScheduler::new(BondConfig {
            duplicate_on_degraded: false,
            ..BondConfig::default()
        });
        s.on_epoch_change(0, 0);
        assert_eq!(s.duplicate_target(0), None);
    }
}
