//! Building TPP probes and echoing them back.
//!
//! §2.2: a flow's rate controller queries the network "using the flow's
//! packets, or using additional probe packets". Both are supported: a
//! [`ProbeBuilder`] mints stand-alone probes, or piggy-backs the TPP onto
//! an application datagram via [`ProbeBuilder::build_frame_with_payload`].

use tpp_isa::Program;
use tpp_wire::ethernet::{build_frame, EtherType, Frame};
use tpp_wire::tpp::{AddressingMode, TppBuilder, TppPacket, FLAG_ECHOED, FLAG_EXECUTED};
use tpp_wire::EthernetAddress;

/// EtherType used for plain (non-TPP) application data frames in the
/// reproduction's experiments. Deliberately not 0x0800: the payloads are
/// synthetic datagrams, not real IPv4 packets.
pub const DATA_ETHERTYPE: EtherType = EtherType(0x0802);

/// Compiles a program once and mints TPP frames on demand.
#[derive(Debug, Clone)]
pub struct ProbeBuilder {
    words: Vec<u32>,
    mode: AddressingMode,
    mem_words: usize,
    per_hop_words: usize,
    init: Vec<u32>,
}

impl ProbeBuilder {
    /// A stack-mode probe with room for `expected_hops` executions of
    /// `program` (packet memory is sized from the program's per-hop
    /// footprint, the §2.1 "preallocate enough packet memory" rule).
    pub fn stack(program: &Program, expected_hops: usize) -> Self {
        let per_hop = program.words_per_hop();
        ProbeBuilder {
            words: program.encode_words().expect("valid program"),
            mode: AddressingMode::Stack,
            mem_words: per_hop * expected_hops,
            per_hop_words: 0,
            init: Vec::new(),
        }
    }

    /// A hop-mode probe: `per_hop_words` words per hop, `expected_hops`
    /// hop slots.
    pub fn hop(program: &Program, expected_hops: usize) -> Self {
        let per_hop = program.words_per_hop();
        ProbeBuilder {
            words: program.encode_words().expect("valid program"),
            mode: AddressingMode::Hop,
            mem_words: per_hop * expected_hops,
            per_hop_words: per_hop,
            init: Vec::new(),
        }
    }

    /// Initialize the head of packet memory with explicit words — how
    /// CSTORE/CEXEC operands and STORE sources are loaded into the
    /// network (Fig. 4: "packet memory can contain initialized values").
    /// Memory is extended if the initializer is longer than the
    /// preallocation.
    pub fn init_memory(mut self, words: &[u32]) -> Self {
        self.init = words.to_vec();
        self
    }

    /// Total packet-memory words the probe will carry.
    pub fn mem_words(&self) -> usize {
        self.mem_words.max(self.init.len())
    }

    /// Build a stand-alone probe frame.
    pub fn build_frame(&self, dst: EthernetAddress, src: EthernetAddress) -> Vec<u8> {
        self.build_frame_with_payload(dst, src, &[], 0)
    }

    /// Build a probe piggy-backed on application payload of the given
    /// inner EtherType.
    pub fn build_frame_with_payload(
        &self,
        dst: EthernetAddress,
        src: EthernetAddress,
        payload: &[u8],
        inner_ethertype: u16,
    ) -> Vec<u8> {
        let mut memory = self.init.clone();
        memory.resize(self.mem_words(), 0);
        let tpp = TppBuilder::new(self.mode)
            .instructions(&self.words)
            .memory_init(&memory)
            .per_hop_words(self.per_hop_words)
            .payload(payload)
            .inner_ethertype(inner_ethertype)
            .build();
        build_frame(dst, src, EtherType::TPP, &tpp)
    }
}

/// If `frame` is an executed, not-yet-echoed TPP addressed to `my_mac`,
/// build the echo: source and destination swapped, [`FLAG_ECHOED`] set,
/// contents untouched. Returns `None` for anything else.
///
/// "The receiver simply echos a fully executed TPP back to the sender"
/// (§2.2 Phase 1). Filtering on [`FLAG_ECHOED`] keeps a sender from
/// re-echoing its own echo.
pub fn echo_reply(frame: &[u8], my_mac: EthernetAddress) -> Option<Vec<u8>> {
    let parsed = Frame::new_checked(frame).ok()?;
    if !parsed.is_tpp() || parsed.dst_addr() != my_mac {
        return None;
    }
    let tpp = TppPacket::new_checked(parsed.payload()).ok()?;
    let flags = tpp.flags();
    if flags & FLAG_EXECUTED == 0 || flags & FLAG_ECHOED != 0 {
        return None;
    }
    let mut reply = frame.to_vec();
    {
        let mut out = Frame::new_unchecked(&mut reply[..]);
        let orig_src = parsed.src_addr();
        out.set_dst_addr(orig_src);
        out.set_src_addr(my_mac);
        let mut tpp_out = TppPacket::new_unchecked(out.payload_mut());
        tpp_out.set_flags(flags | FLAG_ECHOED);
    }
    Some(reply)
}

/// Parse an incoming frame as an echoed TPP addressed to `my_mac`,
/// returning the TPP view over its payload bytes.
pub fn parse_echo(frame: &[u8], my_mac: EthernetAddress) -> Option<TppPacket<&[u8]>> {
    let parsed = Frame::new_checked(frame).ok()?;
    if !parsed.is_tpp() || parsed.dst_addr() != my_mac {
        return None;
    }
    let payload = &frame[tpp_wire::ETHERNET_HEADER_LEN..];
    let tpp = TppPacket::new_checked(payload).ok()?;
    if tpp.flags() & FLAG_ECHOED == 0 {
        return None;
    }
    Some(tpp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_isa::assemble;

    fn macs() -> (EthernetAddress, EthernetAddress) {
        (
            EthernetAddress::from_host_id(10),
            EthernetAddress::from_host_id(20),
        )
    }

    #[test]
    fn stack_probe_sizes_memory_from_program() {
        let program =
            assemble("PUSH [Switch:SwitchID]\nPUSH [Link:QueueSize]\nPUSH [Link:RX-Utilization]")
                .unwrap();
        let probe = ProbeBuilder::stack(&program, 5);
        assert_eq!(probe.mem_words(), 15, "3 words/hop x 5 hops");
        let (dst, src) = macs();
        let frame = probe.build_frame(dst, src);
        let parsed = Frame::new_checked(&frame[..]).unwrap();
        assert!(parsed.is_tpp());
        let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
        assert_eq!(tpp.mem_len(), 60);
        assert_eq!(tpp.instruction_count(), 3);
    }

    #[test]
    fn init_memory_loads_operands() {
        let program = assemble("CEXEC [Switch:SwitchID], [Packet:0]").unwrap();
        let probe = ProbeBuilder::stack(&program, 1).init_memory(&[0xffff_ffff, 0xb0b]);
        let (dst, src) = macs();
        let frame = probe.build_frame(dst, src);
        let parsed = Frame::new_checked(&frame[..]).unwrap();
        let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
        assert_eq!(tpp.memory_words(), vec![0xffff_ffff, 0xb0b]);
    }

    #[test]
    fn echo_only_executed_unechoed_tpps_for_me() {
        let program = assemble("PUSH [Queue:QueueSize]").unwrap();
        let probe = ProbeBuilder::stack(&program, 2);
        let (dst, src) = macs();
        let frame = probe.build_frame(dst, src);

        // Not yet executed: no echo.
        assert!(echo_reply(&frame, dst).is_none());

        // Mark executed (as a TCPU would).
        let mut executed = frame.clone();
        {
            let mut f = Frame::new_unchecked(&mut executed[..]);
            let mut tpp = TppPacket::new_unchecked(f.payload_mut());
            tpp.set_flags(FLAG_EXECUTED);
        }
        // Wrong recipient: no echo.
        assert!(echo_reply(&executed, src).is_none());
        // Right recipient: echo with swapped addresses and ECHOED flag.
        let reply = echo_reply(&executed, dst).unwrap();
        let parsed = Frame::new_checked(&reply[..]).unwrap();
        assert_eq!(parsed.dst_addr(), src);
        assert_eq!(parsed.src_addr(), dst);
        let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
        assert_ne!(tpp.flags() & FLAG_ECHOED, 0);
        // An echo is never echoed again.
        assert!(echo_reply(&reply, src).is_none());
        // And the original sender can parse it.
        assert!(parse_echo(&reply, src).is_some());
        assert!(parse_echo(&reply, dst).is_none());
    }

    #[test]
    fn piggyback_preserves_payload() {
        let program = assemble("PUSH [Queue:QueueSize]").unwrap();
        let probe = ProbeBuilder::stack(&program, 3);
        let (dst, src) = macs();
        let frame = probe.build_frame_with_payload(dst, src, b"app-data", DATA_ETHERTYPE.0);
        let parsed = Frame::new_checked(&frame[..]).unwrap();
        let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
        assert_eq!(tpp.inner_payload(), b"app-data");
        assert_eq!(tpp.inner_ethertype(), DATA_ETHERTYPE.0);
    }

    #[test]
    fn non_tpp_frames_are_ignored() {
        let (dst, src) = macs();
        let frame = build_frame(dst, src, DATA_ETHERTYPE, b"x");
        assert!(echo_reply(&frame, dst).is_none());
        assert!(parse_echo(&frame, dst).is_none());
    }
}
