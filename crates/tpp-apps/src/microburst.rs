//! §2.1 — micro-burst detection.
//!
//! "TPPs can provide fine-grained per-RTT, or even per-packet visibility
//! into queue evolution inside the network. ... If packet memory is
//! addressed like a stack, then the instruction `PUSH [Queue:QueueSize]`
//! copies the queue register onto packet memory. As the packet traverses
//! each hop, the packet memory records snapshots of queue size statistics
//! at each hop. The queue sizes are useful in diagnosing micro-bursts, as
//! they are not an average statistic. They are recorded the instant the
//! packet traversed the switch."
//!
//! [`MicroburstMonitor`] is the end-host side: it emits a probe every
//! `interval_ns` (per-RTT or faster), decodes the echoes into per-switch
//! queue time series, and [`detect_bursts`] finds occupancy excursions.
//! The same detector applied to a slow poller's samples is the baseline
//! the paper contrasts against ("Today's monitoring mechanisms operate
//! only on timescales that are 10s of seconds at best").

use std::collections::BTreeMap;

use tpp_host::{decode_echo, ProbeBuilder, ProbeDelivery, ProbeManager, RetryPolicy};
use tpp_isa::programs;
use tpp_netsim::{HostApp, HostCtx};
use tpp_wire::EthernetAddress;

/// One queue-size observation of one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueSample {
    /// Probe send time, ns — carried in the probe's inner payload and
    /// echoed back, so the sample is stamped with when it was *taken*
    /// (within half an RTT), not when its echo finally got home. Echoes
    /// of probes that queued behind the very burst they measured would
    /// otherwise arrive in clumps and fragment the burst timeline.
    pub t_ns: u64,
    /// `Switch:SwitchID` of the observed hop.
    pub switch_id: u32,
    /// `Queue:QueueSize` in bytes, the instant the probe passed.
    pub queue_bytes: u32,
}

/// The §2.1 monitor: probes a path and accumulates per-switch queue
/// time series.
#[derive(Debug)]
pub struct MicroburstMonitor {
    dst: EthernetAddress,
    probe: ProbeBuilder,
    interval_ns: u64,
    start_ns: u64,
    stop_ns: u64,
    probes: ProbeManager,
    /// All samples, in arrival order.
    pub samples: Vec<QueueSample>,
    /// Probes sent.
    pub probes_sent: u64,
    /// Echoes received and decoded.
    pub echoes_received: u64,
    /// Per-probe `(send_t_ns, rtt_ns)`, in arrival order — the
    /// end-host-observed round-trip latency the observability collector
    /// aggregates alongside the queue samples.
    pub rtts: Vec<(u64, u64)>,
}

const WORDS_PER_HOP: usize = programs::MICROBURST_WORDS_PER_HOP;
const TIMER_PROBE: u64 = 1;

impl MicroburstMonitor {
    /// Monitor the path to `dst` with one probe every `interval_ns`,
    /// active in `[start_ns, stop_ns)`. `expected_hops` sizes packet
    /// memory (§2.1: "the end-host preallocates enough packet memory").
    pub fn new(
        dst: EthernetAddress,
        expected_hops: usize,
        interval_ns: u64,
        start_ns: u64,
        stop_ns: u64,
    ) -> Self {
        let program = programs::microburst_collect();
        MicroburstMonitor {
            dst,
            probe: ProbeBuilder::stack(&program, expected_hops),
            interval_ns,
            start_ns,
            stop_ns,
            // One probe per interval; the next one supersedes, so no
            // retries — the nonce layer only dedups duplicated echoes.
            probes: ProbeManager::new(RetryPolicy {
                timeout_ns: 2 * interval_ns,
                max_retries: 0,
                jitter_permille: 0,
            }),
            samples: Vec::new(),
            probes_sent: 0,
            echoes_received: 0,
            rtts: Vec::new(),
        }
    }

    /// The time series of one switch, `(t_ns, queue_bytes)`.
    pub fn series_for(&self, switch_id: u32) -> Vec<(u64, u64)> {
        self.samples
            .iter()
            .filter(|s| s.switch_id == switch_id)
            .map(|s| (s.t_ns, s.queue_bytes as u64))
            .collect()
    }

    /// All switch ids observed, in ascending order.
    pub fn switches_observed(&self) -> Vec<u32> {
        let set: BTreeMap<u32, ()> = self.samples.iter().map(|s| (s.switch_id, ())).collect();
        set.into_keys().collect()
    }
}

impl HostApp for MicroburstMonitor {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_timer(self.start_ns, TIMER_PROBE);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut HostCtx<'_>) {
        if ProbeManager::is_timer(token) {
            // Lost probes just leave a gap in the series; the next
            // interval re-samples.
            let _ = self.probes.on_timer(ctx);
            return;
        }
        if ctx.now() >= self.stop_ns {
            return;
        }
        let stamp = ctx.now().to_be_bytes();
        let frame = self.probe.build_frame_with_payload(
            self.dst,
            ctx.mac(),
            &stamp,
            tpp_host::DATA_ETHERTYPE.0,
        );
        self.probes.track(frame, ctx);
        self.probes_sent += 1;
        ctx.set_timer(self.interval_ns, TIMER_PROBE);
    }

    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        match self.probes.on_frame(&frame, ctx) {
            // A late sample is still a sample — it carries its own
            // send-time stamp, so the series stays correctly ordered.
            ProbeDelivery::Fresh { .. } | ProbeDelivery::Late { .. } => {}
            // But one probe must contribute exactly one sample per hop.
            ProbeDelivery::Duplicate { .. } | ProbeDelivery::NotAProbe => return,
        }
        let Some(sample) = decode_echo(&frame, ctx.mac(), WORDS_PER_HOP) else {
            return;
        };
        // Recover the send-time stamp we embedded in the inner payload.
        let t_ns = tpp_host::parse_echo(&frame, ctx.mac())
            .map(|tpp| {
                let inner = tpp.inner_payload();
                if inner.len() >= 8 {
                    u64::from_be_bytes(inner[0..8].try_into().expect("8 bytes"))
                } else {
                    ctx.now()
                }
            })
            .unwrap_or_else(|| ctx.now());
        self.echoes_received += 1;
        self.rtts.push((t_ns, ctx.now().saturating_sub(t_ns)));
        for hop in sample.hops {
            self.samples.push(QueueSample {
                t_ns,
                switch_id: hop.words[0],
                queue_bytes: hop.words[1],
            });
        }
    }
}

/// A detected micro-burst: queue occupancy above `threshold` from
/// `start_ns` to `end_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// First sample at/above threshold.
    pub start_ns: u64,
    /// Last sample at/above threshold.
    pub end_ns: u64,
    /// Peak occupancy seen, bytes.
    pub peak_bytes: u64,
}

impl Burst {
    /// The burst's observed duration.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Find excursions of a queue series above `threshold_bytes`.
///
/// Consecutive above-threshold samples separated by gaps of at most
/// `merge_gap_ns` merge into one burst. Works identically on TPP series
/// and on poller series — the comparison the §2.1 experiment makes.
pub fn detect_bursts(series: &[(u64, u64)], threshold_bytes: u64, merge_gap_ns: u64) -> Vec<Burst> {
    let mut bursts: Vec<Burst> = Vec::new();
    for &(t, q) in series {
        if q < threshold_bytes {
            continue;
        }
        match bursts.last_mut() {
            Some(last) if t.saturating_sub(last.end_ns) <= merge_gap_ns => {
                last.end_ns = t;
                last.peak_bytes = last.peak_bytes.max(q);
            }
            _ => bursts.push(Burst {
                start_ns: t,
                end_ns: t,
                peak_bytes: q,
            }),
        }
    }
    bursts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_single_burst() {
        let series: Vec<(u64, u64)> = vec![
            (0, 0),
            (100, 10),
            (200, 5_000),
            (300, 9_000),
            (400, 4_000),
            (500, 0),
        ];
        let bursts = detect_bursts(&series, 3_000, 150);
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].start_ns, 200);
        assert_eq!(bursts[0].end_ns, 400);
        assert_eq!(bursts[0].peak_bytes, 9_000);
        assert_eq!(bursts[0].duration_ns(), 200);
    }

    #[test]
    fn separates_distant_bursts_merges_close_ones() {
        let series: Vec<(u64, u64)> = vec![
            (0, 5_000),
            (100, 5_000),
            (250, 5_000),   // gap 150 <= 200: same burst
            (1_000, 5_000), // gap 750 > 200: new burst
        ];
        let bursts = detect_bursts(&series, 1_000, 200);
        assert_eq!(bursts.len(), 2);
        assert_eq!(bursts[0].end_ns, 250);
        assert_eq!(bursts[1].start_ns, 1_000);
    }

    #[test]
    fn empty_and_quiet_series() {
        assert!(detect_bursts(&[], 100, 10).is_empty());
        let quiet: Vec<(u64, u64)> = (0..100).map(|i| (i * 10, 5)).collect();
        assert!(detect_bursts(&quiet, 100, 10).is_empty());
    }

    #[test]
    fn threshold_is_inclusive() {
        let bursts = detect_bursts(&[(10, 100)], 100, 0);
        assert_eq!(bursts.len(), 1);
    }
}
