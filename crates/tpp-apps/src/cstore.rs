//! §3.2.3 / §2.2 — concurrent writers and the CSTORE consistency story.
//!
//! "With multiple concurrent writers to a shared switch memory, one might
//! wonder if there could be race conditions that are hard to detect.
//! While this is a legitimate concern for network tasks such as
//! accounting, we found that congestion control does not require such
//! strong notions of consistency. Nevertheless, we support a conditional
//! store instruction to provide a stronger (linearizable) notion of
//! consistency for memory updates."
//!
//! [`CounterTask`] is exactly the "accounting" task that *does* need it:
//! each host increments a shared per-switch counter N times. In
//! [`CounterWriteMode::Racy`] mode the read-modify-write round trip is
//! plain `PUSH` + `STORE`, and concurrent hosts lose updates. In
//! [`CounterWriteMode::Linearizable`] mode the write is a `CSTORE`
//! conditioned on the value read, retried on conflict — and no update is
//! ever lost. Experiment E8 quantifies the difference.
//!
//! All probes are gated with `CEXEC` on the target switch ID, so the same
//! program is correct on any multi-hop path (only the target switch
//! executes the access). The `CEXEC` operand block sits at a high packet-
//! memory offset (word 8) so stack pushes never clobber it.

use tpp_host::{parse_echo, ProbeBuilder};
#[cfg(test)]
use tpp_isa::VirtAddr;
use tpp_isa::{assemble, Assembler, SymbolTable};
use tpp_netsim::{HostApp, HostCtx};
use tpp_wire::EthernetAddress;

/// How the counter's write half is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterWriteMode {
    /// `STORE` of locally-computed value: lost updates under concurrency.
    Racy,
    /// `CSTORE` conditioned on the read value, retried on conflict.
    Linearizable,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    AwaitRead,
    AwaitWrite { value_written: u32 },
    AwaitCstore { cond: u32 },
    Done,
}

const TIMER_KICK: u64 = 1;
const TIMER_RETRY: u64 = 2;
const RETRY_NS: u64 = 50_000_000;

/// A host that performs `goal` increments of a shared switch counter.
#[derive(Debug)]
pub struct CounterTask {
    dst: EthernetAddress,
    mode: CounterWriteMode,
    target_switch: u32,
    counter_addr_text: String,
    goal: u32,
    phase: Phase,
    last_probe: Option<Vec<u8>>,
    outstanding: bool,
    last_send_ns: u64,
    /// Increments completed.
    pub completed: u32,
    /// CSTORE conflicts encountered (linearizable mode only).
    pub conflicts: u64,
    /// Probe round-trips used.
    pub round_trips: u64,
}

impl CounterTask {
    /// Increment `Switch:Scratch[word]` at `target_switch` `goal` times,
    /// probing along the path to `dst`.
    pub fn new(
        dst: EthernetAddress,
        target_switch: u32,
        word: usize,
        goal: u32,
        mode: CounterWriteMode,
    ) -> Self {
        CounterTask {
            dst,
            mode,
            target_switch,
            counter_addr_text: format!("Switch:Scratch[{word}]"),
            goal,
            phase: Phase::Idle,
            last_probe: None,
            outstanding: false,
            last_send_ns: 0,
            completed: 0,
            conflicts: 0,
            round_trips: 0,
        }
    }

    /// True once `goal` increments have been applied.
    pub fn done(&self) -> bool {
        self.phase == Phase::Done
    }

    fn asm(&self) -> Assembler {
        Assembler::with_symbols(SymbolTable::new())
    }

    fn gate_init(&self) -> [u32; 2] {
        [0xffff_ffff, self.target_switch]
    }

    /// `CEXEC` gate + read of the counter. Stack pushes land at words
    /// 0..8; the gate block lives at words 8..10.
    fn send_read(&mut self, ctx: &mut HostCtx<'_>) {
        let program = assemble(&format!(
            "CEXEC [Switch:SwitchID], [Packet:8]\nPUSH [{}]",
            self.counter_addr_text
        ))
        .expect("static program");
        let mut init = vec![0u32; 10];
        init[8..10].copy_from_slice(&self.gate_init());
        let probe = ProbeBuilder::stack(&program, 1).init_memory(&init);
        let frame = probe.build_frame(self.dst, ctx.mac());
        self.last_probe = Some(frame.clone());
        self.outstanding = true;
        self.last_send_ns = ctx.now();
        ctx.send(frame);
        self.phase = Phase::AwaitRead;
    }

    /// Racy write: gate + unconditional `STORE` of `value`.
    fn send_write(&mut self, value: u32, ctx: &mut HostCtx<'_>) {
        let program = self
            .asm()
            .assemble(&format!(
                "CEXEC [Switch:SwitchID], [Packet:8]\nSTORE [{}], [Packet:2]",
                self.counter_addr_text
            ))
            .expect("static program");
        let mut init = vec![0u32; 10];
        init[2] = value;
        init[8..10].copy_from_slice(&self.gate_init());
        let probe = ProbeBuilder::stack(&program, 1).init_memory(&init);
        let frame = probe.build_frame(self.dst, ctx.mac());
        self.last_probe = Some(frame.clone());
        self.outstanding = true;
        self.last_send_ns = ctx.now();
        ctx.send(frame);
        self.phase = Phase::AwaitWrite {
            value_written: value,
        };
    }

    /// Linearizable write: gate + `CSTORE cond -> cond+1`; the operand
    /// block `[cond, src, old]` sits at words 2..5.
    fn send_cstore(&mut self, cond: u32, ctx: &mut HostCtx<'_>) {
        let program = self
            .asm()
            .assemble(&format!(
                "CEXEC [Switch:SwitchID], [Packet:8]\nCSTORE [{}], [Packet:2]",
                self.counter_addr_text
            ))
            .expect("static program");
        let mut init = vec![0u32; 10];
        init[2] = cond;
        init[3] = cond.wrapping_add(1);
        init[8..10].copy_from_slice(&self.gate_init());
        let probe = ProbeBuilder::stack(&program, 1).init_memory(&init);
        let frame = probe.build_frame(self.dst, ctx.mac());
        self.last_probe = Some(frame.clone());
        self.outstanding = true;
        self.last_send_ns = ctx.now();
        ctx.send(frame);
        self.phase = Phase::AwaitCstore { cond };
    }

    fn advance(&mut self, ctx: &mut HostCtx<'_>) {
        if self.completed >= self.goal {
            self.phase = Phase::Done;
            self.last_probe = None;
            return;
        }
        self.send_read(ctx);
    }
}

impl HostApp for CounterTask {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_timer(1, TIMER_KICK);
        ctx.set_timer(RETRY_NS, TIMER_RETRY);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut HostCtx<'_>) {
        match token {
            TIMER_KICK => self.advance(ctx),
            TIMER_RETRY
                // Lost probe/echo safety net: re-send only when a probe
                // is genuinely outstanding past the timeout. (A duplicate
                // of a probe that was NOT lost would re-execute at the
                // switch; this retry is only sound when the original or
                // its echo died.)
                if !self.done() => {
                    let stalled = self.outstanding
                        && ctx.now().saturating_sub(self.last_send_ns) >= RETRY_NS;
                    if let (true, Some(frame)) = (stalled, self.last_probe.clone()) {
                        self.last_send_ns = ctx.now();
                        ctx.send(frame);
                    }
                    ctx.set_timer(RETRY_NS, TIMER_RETRY);
                }
            _ => {}
        }
    }

    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        let Some(tpp) = parse_echo(&frame, ctx.mac()) else {
            return;
        };
        self.round_trips += 1;
        self.outstanding = false;
        let memory = tpp.memory_words();
        let stack = tpp.stack_words();
        match self.phase {
            Phase::AwaitRead => {
                // The gated PUSH ran only on the target switch: exactly
                // one stack word.
                let Some(&value) = stack.first() else {
                    return;
                };
                match self.mode {
                    CounterWriteMode::Racy => self.send_write(value.wrapping_add(1), ctx),
                    CounterWriteMode::Linearizable => self.send_cstore(value, ctx),
                }
            }
            Phase::AwaitWrite { .. } => {
                // Fire-and-forget store: count it and move on. (This is
                // precisely why updates get lost.)
                self.completed += 1;
                self.advance(ctx);
            }
            Phase::AwaitCstore { cond } => {
                let Some(&old) = memory.get(4) else {
                    return;
                };
                if old == cond {
                    self.completed += 1;
                    self.advance(ctx);
                } else {
                    // Conflict: another writer got in first. Retry with
                    // the value the switch reported.
                    self.conflicts += 1;
                    self.send_cstore(old, ctx);
                }
            }
            Phase::Idle | Phase::Done => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_host::EchoReceiver;
    use tpp_isa::Stat;
    use tpp_netsim::{dumbbell, time, DumbbellParams, Simulator};

    const COUNTER_WORD: usize = 4;
    const TARGET_SWITCH: u32 = 1; // dumbbell left switch

    fn counter_addr() -> VirtAddr {
        VirtAddr(0x8000 + (COUNTER_WORD as u16) * 4)
    }

    fn run(
        n_hosts: usize,
        goal: u32,
        mode: CounterWriteMode,
    ) -> (Simulator, tpp_netsim::Dumbbell, u32) {
        let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = (0..n_hosts)
            .map(|i| {
                let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
                (
                    Box::new(CounterTask::new(
                        dst,
                        TARGET_SWITCH,
                        COUNTER_WORD,
                        goal,
                        mode,
                    )) as Box<dyn HostApp>,
                    Box::new(EchoReceiver::default()) as Box<dyn HostApp>,
                )
            })
            .collect();
        let (mut sim, bell) = dumbbell(
            DumbbellParams {
                n_pairs: n_hosts,
                bottleneck_kbps: 100_000, // uncongested for this task
                ..Default::default()
            },
            apps,
        );
        sim.run_until(time::secs(30));
        let value = sim
            .switch(bell.left)
            .global_sram()
            .word(counter_addr().word_index())
            .unwrap();
        (sim, bell, value)
    }

    #[test]
    fn single_writer_is_exact_either_way() {
        for mode in [CounterWriteMode::Racy, CounterWriteMode::Linearizable] {
            let (sim, bell, value) = run(1, 20, mode);
            let task = sim.host_app::<CounterTask>(bell.senders[0]);
            assert!(task.done(), "task incomplete in {mode:?}");
            assert_eq!(value, 20, "mode {mode:?}");
        }
    }

    #[test]
    fn concurrent_racy_writers_lose_updates() {
        let (sim, bell, value) = run(3, 30, CounterWriteMode::Racy);
        for s in &bell.senders {
            assert!(sim.host_app::<CounterTask>(*s).done());
        }
        // 90 increments issued; interleaved read-modify-write must lose
        // some (hosts probe in near-lockstep through the same switch).
        assert!(value < 90, "no lost updates despite racing: {value}");
        assert!(value >= 30, "sanity: at least one host's worth applied");
    }

    #[test]
    fn cstore_makes_concurrent_writers_exact() {
        let (sim, bell, value) = run(3, 30, CounterWriteMode::Linearizable);
        let mut conflicts = 0;
        for s in &bell.senders {
            let task = sim.host_app::<CounterTask>(*s);
            assert!(task.done());
            conflicts += task.conflicts;
        }
        assert_eq!(value, 90, "CSTORE must not lose updates");
        assert!(conflicts > 0, "the race was real: conflicts were detected");
    }

    #[test]
    fn gate_prevents_other_switches_from_executing() {
        // After a run, the *right* switch's counter word must be
        // untouched: the CEXEC gate kept the access on switch 1 only.
        let (sim, bell, _) = run(2, 10, CounterWriteMode::Linearizable);
        assert_eq!(
            sim.switch(bell.right)
                .global_sram()
                .word(counter_addr().word_index())
                .unwrap(),
            0
        );
        // (Also a sanity check that the stat symbol we gate on exists.)
        assert_eq!(Stat::SwitchId.addr(), VirtAddr(0));
    }
}
