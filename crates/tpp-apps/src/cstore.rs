//! §3.2.3 / §2.2 — concurrent writers and the CSTORE consistency story.
//!
//! "With multiple concurrent writers to a shared switch memory, one might
//! wonder if there could be race conditions that are hard to detect.
//! While this is a legitimate concern for network tasks such as
//! accounting, we found that congestion control does not require such
//! strong notions of consistency. Nevertheless, we support a conditional
//! store instruction to provide a stronger (linearizable) notion of
//! consistency for memory updates."
//!
//! [`CounterTask`] is exactly the "accounting" task that *does* need it:
//! each host increments a shared per-switch counter N times. In
//! [`CounterWriteMode::Racy`] mode the read-modify-write round trip is
//! plain `PUSH` + `STORE`, and concurrent hosts lose updates. In
//! [`CounterWriteMode::Linearizable`] mode the write is a `CSTORE`
//! conditioned on the value read, retried on conflict — and no update is
//! ever lost. Experiment E8 quantifies the difference.
//!
//! Reliability is layered on top with [`ProbeManager`] (timeouts,
//! bounded retries, nonce dedup) plus a per-writer *sequence guard* in
//! the increment program itself:
//!
//! ```text
//! CEXEC  [Seq[w]] == s-1     ; halt if op s already ran (duplicate)
//! STORE  [Seq[w]] := s       ; consume the sequence number
//! CSTORE [counter] c -> c+1  ; the increment; old value -> packet
//! STORE  [Res[w]]  := old    ; record the outcome durably
//! ```
//!
//! A retried or duplicated probe finds `Seq[w] == s` and halts, so op
//! `s` executes at most once no matter how many copies the network
//! delivers. When every echo for op `s` is lost, a recovery read of
//! `(counter, Seq[w], Res[w])` tells the host whether the increment
//! applied (`Res[w] == c`), making increments exactly-once even under
//! loss + reordering + duplication. `Switch:BootEpoch` rides along in
//! every read so a switch reboot (which wipes the cells) is detected and
//! the guard state re-seeded.
//!
//! All probes are gated with `CEXEC` on the target switch ID, so the same
//! program is correct on any multi-hop path (only the target switch
//! executes the access). The `CEXEC` operand blocks sit at high packet-
//! memory offsets (word 8+) so stack pushes never clobber them.

use tpp_host::{parse_echo, ProbeBuilder, ProbeDelivery, ProbeManager, RetryPolicy};
#[cfg(test)]
use tpp_isa::VirtAddr;
use tpp_isa::{assemble, Assembler, SymbolTable};
use tpp_netsim::{HostApp, HostCtx};
use tpp_wire::EthernetAddress;

/// How the counter's write half is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterWriteMode {
    /// `STORE` of locally-computed value: lost updates under concurrency.
    Racy,
    /// `CSTORE` conditioned on the read value, retried on conflict.
    Linearizable,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    /// Waiting for a read echo; `recover` carries the unresolved op
    /// `(s, cond)` when this read is resolving an ambiguous increment.
    AwaitRead {
        recover: Option<(u32, u32)>,
    },
    /// Racy mode: waiting for the unconditional STORE's echo.
    AwaitWrite {
        value_written: u32,
    },
    /// Linearizable mode: waiting for guarded increment op `s` with
    /// condition `cond`.
    AwaitOp {
        seq: u32,
        cond: u32,
    },
    Done,
}

const TIMER_KICK: u64 = 1;

/// Initial value of the CSTORE old-value slot; still present in the echo
/// only when the seq guard halted the program (op already consumed).
const OLD_SENTINEL: u32 = 0xffff_ffff;

/// A host that performs `goal` increments of a shared switch counter.
#[derive(Debug)]
pub struct CounterTask {
    dst: EthernetAddress,
    mode: CounterWriteMode,
    target_switch: u32,
    counter_word: usize,
    counter_addr_text: String,
    seq_addr_text: String,
    res_addr_text: String,
    goal: u32,
    phase: Phase,
    /// Sequence number of the next increment op (1-based; the per-writer
    /// seq cell starts at 0).
    next_seq: u32,
    probes: ProbeManager,
    /// Increments completed.
    pub completed: u32,
    /// CSTORE conflicts encountered (linearizable mode only).
    pub conflicts: u64,
    /// Probe round-trips used.
    pub round_trips: u64,
}

impl CounterTask {
    /// Increment `Switch:Scratch[word]` at `target_switch` `goal` times,
    /// probing along the path to `dst`.
    pub fn new(
        dst: EthernetAddress,
        target_switch: u32,
        word: usize,
        goal: u32,
        mode: CounterWriteMode,
    ) -> Self {
        CounterTask {
            dst,
            mode,
            target_switch,
            counter_word: word,
            counter_addr_text: format!("Switch:Scratch[{word}]"),
            seq_addr_text: String::new(),
            res_addr_text: String::new(),
            goal,
            phase: Phase::Idle,
            next_seq: 1,
            probes: ProbeManager::new(RetryPolicy {
                timeout_ns: 50_000_000,
                max_retries: 3,
                jitter_permille: 250,
            }),
            completed: 0,
            conflicts: 0,
            round_trips: 0,
        }
    }

    /// True once `goal` increments have been applied.
    pub fn done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// The reliability layer's counters (retries, timeouts, dedup hits).
    pub fn probe_stats(&self) -> tpp_host::ProbeStats {
        self.probes.stats()
    }

    fn asm(&self) -> Assembler {
        Assembler::with_symbols(SymbolTable::new())
    }

    fn gate_init(&self) -> [u32; 2] {
        [0xffff_ffff, self.target_switch]
    }

    /// `CEXEC` gate + read of counter, guard cells, and boot epoch.
    /// Stack pushes land at words 0..4; the gate block lives at 8..10.
    fn send_read(&mut self, recover: Option<(u32, u32)>, ctx: &mut HostCtx<'_>) {
        let program = assemble(&format!(
            "CEXEC [Switch:SwitchID], [Packet:8]\n\
             PUSH [{counter}]\nPUSH [{seq}]\nPUSH [{res}]\nPUSH [Switch:BootEpoch]",
            counter = self.counter_addr_text,
            seq = self.seq_addr_text,
            res = self.res_addr_text,
        ))
        .expect("static program");
        let mut init = vec![0u32; 10];
        init[8..10].copy_from_slice(&self.gate_init());
        let probe = ProbeBuilder::stack(&program, 1).init_memory(&init);
        let frame = probe.build_frame(self.dst, ctx.mac());
        self.probes.track(frame, ctx);
        self.phase = Phase::AwaitRead { recover };
    }

    /// Racy write: gate + unconditional `STORE` of `value`.
    fn send_write(&mut self, value: u32, ctx: &mut HostCtx<'_>) {
        let program = self
            .asm()
            .assemble(&format!(
                "CEXEC [Switch:SwitchID], [Packet:8]\nSTORE [{}], [Packet:2]",
                self.counter_addr_text
            ))
            .expect("static program");
        let mut init = vec![0u32; 10];
        init[2] = value;
        init[8..10].copy_from_slice(&self.gate_init());
        let probe = ProbeBuilder::stack(&program, 1).init_memory(&init);
        let frame = probe.build_frame(self.dst, ctx.mac());
        self.probes.track(frame, ctx);
        self.phase = Phase::AwaitWrite {
            value_written: value,
        };
    }

    /// Linearizable increment op `s`: seq guard, `CSTORE cond -> cond+1`,
    /// durable outcome record (module docs). Every transmission of op
    /// `s` carries the same `(s, cond)`, so at most one copy executes.
    fn send_op(&mut self, s: u32, cond: u32, ctx: &mut HostCtx<'_>) {
        let program = self
            .asm()
            .assemble(&format!(
                "CEXEC [Switch:SwitchID], [Packet:8]\n\
                 CEXEC [{seq}], [Packet:10]\n\
                 STORE [{seq}], [Packet:2]\n\
                 CSTORE [{counter}], [Packet:4]\n\
                 STORE [{res}], [Packet:6]",
                seq = self.seq_addr_text,
                counter = self.counter_addr_text,
                res = self.res_addr_text,
            ))
            .expect("static program");
        let mut init = vec![0u32; 12];
        init[2] = s;
        init[4] = cond;
        init[5] = cond.wrapping_add(1);
        init[6] = OLD_SENTINEL;
        init[8..10].copy_from_slice(&self.gate_init());
        init[10] = 0xffff_ffff;
        init[11] = s - 1;
        let probe = ProbeBuilder::stack(&program, 1).init_memory(&init);
        let frame = probe.build_frame(self.dst, ctx.mac());
        self.probes.track(frame, ctx);
        self.phase = Phase::AwaitOp { seq: s, cond };
    }

    fn advance(&mut self, ctx: &mut HostCtx<'_>) {
        if self.completed >= self.goal {
            self.phase = Phase::Done;
            return;
        }
        self.send_read(None, ctx);
    }

    /// An op is resolved: count it, bump the sequence, continue.
    fn resolve_op(&mut self, s: u32, applied: bool, ctx: &mut HostCtx<'_>) {
        if applied {
            self.completed += 1;
        } else {
            self.conflicts += 1;
        }
        self.next_seq = s + 1;
        self.advance(ctx);
    }
}

impl HostApp for CounterTask {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        // Per-writer guard cells above the shared counter word: hosts
        // never collide because host ids are unique.
        let w = ctx.host_id().0;
        self.seq_addr_text = format!("Switch:Scratch[{}]", self.counter_word + 1 + 2 * w);
        self.res_addr_text = format!("Switch:Scratch[{}]", self.counter_word + 2 + 2 * w);
        ctx.set_timer(1, TIMER_KICK);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut HostCtx<'_>) {
        if token == TIMER_KICK {
            self.advance(ctx);
            return;
        }
        if ProbeManager::is_timer(token) {
            let expired = self.probes.on_timer(ctx);
            if expired.is_empty() || self.done() {
                return;
            }
            // The current probe exhausted its retries. Reads and racy
            // writes are idempotent — re-issue them. An increment op's
            // fate is unknown, so resolve it with a recovery read.
            match self.phase {
                Phase::AwaitRead { recover } => self.send_read(recover, ctx),
                Phase::AwaitWrite { value_written } => self.send_write(value_written, ctx),
                Phase::AwaitOp { seq, cond } => self.send_read(Some((seq, cond)), ctx),
                Phase::Idle | Phase::Done => {}
            }
        }
    }

    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        match self.probes.on_frame(&frame, ctx) {
            ProbeDelivery::Fresh { .. } => {}
            // Duplicated, stale, or foreign frames carry no new
            // information, and a late echo races the recovery read that
            // its expiry already triggered — the read supersedes it.
            ProbeDelivery::Late { .. }
            | ProbeDelivery::Duplicate { .. }
            | ProbeDelivery::NotAProbe => return,
        }
        let Some(tpp) = parse_echo(&frame, ctx.mac()) else {
            return;
        };
        self.round_trips += 1;
        let memory = tpp.memory_words();
        let stack = tpp.stack_words();
        match self.phase {
            Phase::AwaitRead { recover } => {
                // The gated pushes ran only on the target switch:
                // [counter, seq, res, epoch].
                let [counter_val, seq_val, res_val, epoch] = stack[..] else {
                    // Short stack: the probe never executed cleanly.
                    self.send_read(recover, ctx);
                    return;
                };
                let mut recover = recover;
                if self.probes.note_epoch(self.target_switch, epoch, ctx) {
                    // The switch rebooted: counter and guard cells are
                    // wiped. Re-seed the sequence space from the state
                    // the read just observed and forget any pre-reboot
                    // op — its fate is unknowable now.
                    self.next_seq = seq_val + 1;
                    recover = None;
                }
                if let Some((s, cond)) = recover {
                    if seq_val >= s {
                        // Op `s` executed exactly once; the durable
                        // outcome cell says whether it applied.
                        self.resolve_op(s, res_val == cond, ctx);
                    } else {
                        // Never executed (copies may still be in
                        // flight): re-issue the identical op — the seq
                        // guard makes extra copies harmless.
                        self.send_op(s, cond, ctx);
                    }
                    return;
                }
                match self.mode {
                    CounterWriteMode::Racy => self.send_write(counter_val.wrapping_add(1), ctx),
                    CounterWriteMode::Linearizable => self.send_op(self.next_seq, counter_val, ctx),
                }
            }
            Phase::AwaitWrite { .. } => {
                // Fire-and-forget store: count it and move on. (This is
                // precisely why updates get lost.)
                self.completed += 1;
                self.advance(ctx);
            }
            Phase::AwaitOp { seq, cond } => {
                let Some(&old) = memory.get(6) else {
                    self.send_read(Some((seq, cond)), ctx);
                    return;
                };
                if old == cond {
                    // The CSTORE matched: increment applied.
                    self.resolve_op(seq, true, ctx);
                } else if old == OLD_SENTINEL {
                    // Seq guard halted: an earlier copy of op `seq`
                    // already consumed it — ask the switch what happened.
                    self.send_read(Some((seq, cond)), ctx);
                } else {
                    // Conflict: another writer got in first. The op ran
                    // (seq consumed) but did not apply.
                    self.resolve_op(seq, false, ctx);
                }
            }
            Phase::Idle | Phase::Done => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_host::EchoReceiver;
    use tpp_isa::Stat;
    use tpp_netsim::RunLimit;
    use tpp_netsim::{dumbbell, time, DumbbellParams, Simulator};

    const COUNTER_WORD: usize = 4;
    const TARGET_SWITCH: u32 = 1; // dumbbell left switch

    fn counter_addr() -> VirtAddr {
        VirtAddr(0x8000 + (COUNTER_WORD as u16) * 4)
    }

    fn run(
        n_hosts: usize,
        goal: u32,
        mode: CounterWriteMode,
    ) -> (Simulator, tpp_netsim::Dumbbell, u32) {
        let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = (0..n_hosts)
            .map(|i| {
                let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
                (
                    Box::new(CounterTask::new(
                        dst,
                        TARGET_SWITCH,
                        COUNTER_WORD,
                        goal,
                        mode,
                    )) as Box<dyn HostApp>,
                    Box::new(EchoReceiver::default()) as Box<dyn HostApp>,
                )
            })
            .collect();
        let (mut sim, bell) = dumbbell(
            DumbbellParams {
                n_pairs: n_hosts,
                bottleneck_kbps: 100_000, // uncongested for this task
                ..Default::default()
            },
            apps,
        );
        sim.run(RunLimit::Until(time::secs(30)));
        let value = sim
            .switch(bell.left)
            .global_sram()
            .word(counter_addr().word_index())
            .unwrap();
        (sim, bell, value)
    }

    #[test]
    fn single_writer_is_exact_either_way() {
        for mode in [CounterWriteMode::Racy, CounterWriteMode::Linearizable] {
            let (sim, bell, value) = run(1, 20, mode);
            let task = sim.host_app::<CounterTask>(bell.senders[0]);
            assert!(task.done(), "task incomplete in {mode:?}");
            assert_eq!(value, 20, "mode {mode:?}");
        }
    }

    #[test]
    fn concurrent_racy_writers_lose_updates() {
        let (sim, bell, value) = run(3, 30, CounterWriteMode::Racy);
        for s in &bell.senders {
            assert!(sim.host_app::<CounterTask>(*s).done());
        }
        // 90 increments issued; interleaved read-modify-write must lose
        // some (hosts probe in near-lockstep through the same switch).
        assert!(value < 90, "no lost updates despite racing: {value}");
        assert!(value >= 30, "sanity: at least one host's worth applied");
    }

    #[test]
    fn cstore_makes_concurrent_writers_exact() {
        let (sim, bell, value) = run(3, 30, CounterWriteMode::Linearizable);
        let mut conflicts = 0;
        for s in &bell.senders {
            let task = sim.host_app::<CounterTask>(*s);
            assert!(task.done());
            conflicts += task.conflicts;
        }
        assert_eq!(value, 90, "CSTORE must not lose updates");
        assert!(conflicts > 0, "the race was real: conflicts were detected");
    }

    #[test]
    fn gate_prevents_other_switches_from_executing() {
        // After a run, the *right* switch's counter word must be
        // untouched: the CEXEC gate kept the access on switch 1 only.
        let (sim, bell, _) = run(2, 10, CounterWriteMode::Linearizable);
        assert_eq!(
            sim.switch(bell.right)
                .global_sram()
                .word(counter_addr().word_index())
                .unwrap(),
            0
        );
        // (Also a sanity check that the stat symbol we gate on exists.)
        assert_eq!(Stat::SwitchId.addr(), VirtAddr(0));
    }
}
