//! §2.3 — the forwarding-plane debugger, ndb.
//!
//! "Using TPPs, end-hosts can get the same level of visibility as ndb by
//! having a trusted entity insert the TPP shown below on all its packets.
//! On receiving a TPP that has finished executing on all hops, the
//! end-host gets an accurate view of the network forwarding state that
//! affected the packet's forwarding, without requiring the network to
//! create additional packet copies."
//!
//! The in-network program (the paper's three PUSHes plus the matched
//! entry's *version*, which is the ndb paper's stamp the text describes
//! the controller maintaining):
//!
//! ```text
//! PUSH [Switch:SwitchID]
//! PUSH [PacketMetadata:MatchedEntryID]
//! PUSH [PacketMetadata:MatchedEntryVersion]
//! PUSH [PacketMetadata:InputPort]
//! ```
//!
//! End-host side: [`NdbProbeSender`] stamps outgoing packets,
//! [`TraceCollector`] decodes each arrival into a [`PathTrace`], and
//! [`PathPolicy::verify`] checks traces against the administrator's
//! intent — detecting misrouting, stale rules (control/dataplane version
//! mismatch, "there can be a mismatch between the control plane's view of
//! routing state and the actual forwarding state in hardware") and loops;
//! black holes fall out of comparing sent vs. collected packet ids.

use std::collections::BTreeMap;

use tpp_host::{split_hops, ProbeBuilder, DATA_ETHERTYPE};
use tpp_isa::programs;
use tpp_netsim::{HostApp, HostCtx};
use tpp_wire::ethernet::Frame;
use tpp_wire::tpp::TppPacket;
use tpp_wire::EthernetAddress;

/// Words the ndb program records per hop.
pub const NDB_WORDS_PER_HOP: usize = programs::NDB_WORDS_PER_HOP;

const TIMER_SEND: u64 = 1;

/// What one switch reported about one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdbHop {
    /// `Switch:SwitchID`.
    pub switch_id: u32,
    /// `PacketMetadata:MatchedEntryID` (0 = no TCAM match; forwarded by
    /// L2/L3).
    pub entry_id: u32,
    /// `PacketMetadata:MatchedEntryVersion`.
    pub entry_version: u32,
    /// `PacketMetadata:InputPort`.
    pub input_port: u32,
}

/// The reassembled journey of one packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathTrace {
    /// Application-assigned packet id (from the probe's inner payload).
    pub packet_id: u32,
    /// When the collector saw it, ns.
    pub t_ns: u64,
    /// Hop records in path order.
    pub hops: Vec<NdbHop>,
}

impl PathTrace {
    /// The switch ids along the path.
    pub fn path(&self) -> Vec<u32> {
        self.hops.iter().map(|h| h.switch_id).collect()
    }

    /// True when a switch appears twice — a forwarding loop.
    pub fn has_loop(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.hops.iter().any(|h| !seen.insert(h.switch_id))
    }
}

/// A policy violation found by [`PathPolicy::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The packet took a different switch sequence than intended.
    WrongPath {
        /// The administrator's intended path.
        expected: Vec<u32>,
        /// What the trace shows.
        actual: Vec<u32>,
    },
    /// A switch forwarded with an entry version older/newer than the
    /// controller believes is installed.
    StaleEntry {
        /// The switch.
        switch_id: u32,
        /// The entry that matched.
        entry_id: u32,
        /// Version the dataplane used.
        seen_version: u32,
        /// Version the controller intended.
        expected_version: u32,
    },
    /// The packet visited some switch twice.
    ForwardingLoop {
        /// The traced path.
        path: Vec<u32>,
    },
}

/// The administrator's intent for one traffic class.
#[derive(Debug, Clone, Default)]
pub struct PathPolicy {
    /// Intended switch sequence.
    pub expected_path: Vec<u32>,
    /// Controller's view of installed entry versions, keyed by
    /// `(switch id, entry id)` — the same entry id can be installed on
    /// several switches at different versions. Entries the trace reports
    /// but the map omits are not checked.
    pub expected_versions: BTreeMap<(u32, u32), u32>,
}

impl PathPolicy {
    /// Check one trace; empty result = conforming.
    pub fn verify(&self, trace: &PathTrace) -> Vec<Violation> {
        let mut violations = Vec::new();
        if trace.has_loop() {
            violations.push(Violation::ForwardingLoop { path: trace.path() });
        }
        let actual = trace.path();
        if !self.expected_path.is_empty() && actual != self.expected_path {
            violations.push(Violation::WrongPath {
                expected: self.expected_path.clone(),
                actual,
            });
        }
        for hop in &trace.hops {
            if hop.entry_id == 0 {
                continue;
            }
            if let Some(&expected) = self.expected_versions.get(&(hop.switch_id, hop.entry_id)) {
                if expected != hop.entry_version {
                    violations.push(Violation::StaleEntry {
                        switch_id: hop.switch_id,
                        entry_id: hop.entry_id,
                        seen_version: hop.entry_version,
                        expected_version: expected,
                    });
                }
            }
        }
        violations
    }
}

/// Packet ids that were sent but never traced — black holes.
pub fn missing_ids(sent: &[u32], traces: &[PathTrace]) -> Vec<u32> {
    let seen: std::collections::HashSet<u32> = traces.iter().map(|t| t.packet_id).collect();
    sent.iter()
        .copied()
        .filter(|id| !seen.contains(id))
        .collect()
}

/// The "trusted entity" that inserts the ndb TPP on traffic (§2.3): sends
/// `count` stamped packets to `dst`, one every `interval_ns`.
#[derive(Debug)]
pub struct NdbProbeSender {
    dst: EthernetAddress,
    probe: ProbeBuilder,
    interval_ns: u64,
    count: u32,
    /// Ids of packets sent so far (monotonic from 0).
    pub sent_ids: Vec<u32>,
}

impl NdbProbeSender {
    /// A sender of `count` traced packets along a path of at most
    /// `expected_hops` switches.
    pub fn new(dst: EthernetAddress, expected_hops: usize, interval_ns: u64, count: u32) -> Self {
        let program = programs::ndb_trace();
        NdbProbeSender {
            dst,
            probe: ProbeBuilder::stack(&program, expected_hops),
            interval_ns,
            count,
            sent_ids: Vec::new(),
        }
    }
}

impl HostApp for NdbProbeSender {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_timer(1, TIMER_SEND);
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut HostCtx<'_>) {
        if self.sent_ids.len() as u32 >= self.count {
            return;
        }
        let id = self.sent_ids.len() as u32;
        let frame = self.probe.build_frame_with_payload(
            self.dst,
            ctx.mac(),
            &id.to_be_bytes(),
            DATA_ETHERTYPE.0,
        );
        ctx.send(frame);
        self.sent_ids.push(id);
        ctx.set_timer(self.interval_ns, TIMER_SEND);
    }
}

/// The receiving server that "reassembles" traces (§2.3) — here each
/// arriving packet carries its whole trace, so reassembly is decoding.
#[derive(Debug, Default)]
pub struct TraceCollector {
    /// Every decoded trace, in arrival order.
    pub traces: Vec<PathTrace>,
    /// Frames that looked like ndb probes but failed to decode.
    pub undecodable: u64,
}

impl HostApp for TraceCollector {
    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        let Ok(parsed) = Frame::new_checked(&frame[..]) else {
            return;
        };
        if !parsed.is_tpp() {
            return;
        }
        let Ok(tpp) = TppPacket::new_checked(parsed.payload()) else {
            self.undecodable += 1;
            return;
        };
        let Some(sample) = split_hops(&tpp, NDB_WORDS_PER_HOP) else {
            self.undecodable += 1;
            return;
        };
        let inner = tpp.inner_payload();
        if inner.len() < 4 {
            self.undecodable += 1;
            return;
        }
        let packet_id = u32::from_be_bytes(inner[0..4].try_into().expect("4 bytes"));
        let hops = sample
            .hops
            .iter()
            .map(|h| NdbHop {
                switch_id: h.words[0],
                entry_id: h.words[1],
                entry_version: h.words[2],
                input_port: h.words[3],
            })
            .collect();
        self.traces.push(PathTrace {
            packet_id,
            t_ns: ctx.now(),
            hops,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(switch_id: u32, entry_id: u32, version: u32, port: u32) -> NdbHop {
        NdbHop {
            switch_id,
            entry_id,
            entry_version: version,
            input_port: port,
        }
    }

    fn trace(hops: Vec<NdbHop>) -> PathTrace {
        PathTrace {
            packet_id: 0,
            t_ns: 0,
            hops,
        }
    }

    #[test]
    fn conforming_trace_passes() {
        let policy = PathPolicy {
            expected_path: vec![1, 2, 3],
            expected_versions: [((1, 7), 2)].into(),
        };
        let t = trace(vec![hop(1, 7, 2, 0), hop(2, 0, 0, 1), hop(3, 0, 0, 1)]);
        assert!(policy.verify(&t).is_empty());
    }

    #[test]
    fn wrong_path_detected() {
        let policy = PathPolicy {
            expected_path: vec![1, 2, 3],
            ..Default::default()
        };
        let t = trace(vec![hop(1, 0, 0, 0), hop(4, 0, 0, 1), hop(3, 0, 0, 1)]);
        let violations = policy.verify(&t);
        assert_eq!(
            violations,
            vec![Violation::WrongPath {
                expected: vec![1, 2, 3],
                actual: vec![1, 4, 3]
            }]
        );
    }

    #[test]
    fn stale_entry_detected() {
        // Controller thinks entry 7 is at version 3; dataplane used 2.
        let policy = PathPolicy {
            expected_path: vec![1, 2],
            expected_versions: [((1, 7), 3)].into(),
        };
        let t = trace(vec![hop(1, 7, 2, 0), hop(2, 0, 0, 1)]);
        let violations = policy.verify(&t);
        assert_eq!(
            violations,
            vec![Violation::StaleEntry {
                switch_id: 1,
                entry_id: 7,
                seen_version: 2,
                expected_version: 3
            }]
        );
    }

    #[test]
    fn loop_detected() {
        let policy = PathPolicy::default();
        let t = trace(vec![hop(1, 0, 0, 0), hop(2, 0, 0, 1), hop(1, 0, 0, 2)]);
        let violations = policy.verify(&t);
        assert!(matches!(violations[0], Violation::ForwardingLoop { .. }));
        assert!(t.has_loop());
    }

    #[test]
    fn unknown_entries_are_not_checked() {
        let policy = PathPolicy {
            expected_path: vec![1],
            expected_versions: BTreeMap::new(),
        };
        let t = trace(vec![hop(1, 99, 5, 0)]);
        assert!(policy.verify(&t).is_empty());
    }

    #[test]
    fn missing_ids_found() {
        let traces = vec![
            PathTrace {
                packet_id: 0,
                t_ns: 0,
                hops: vec![],
            },
            PathTrace {
                packet_id: 2,
                t_ns: 0,
                hops: vec![],
            },
        ];
        assert_eq!(missing_ids(&[0, 1, 2, 3], &traces), vec![1, 3]);
        assert!(missing_ids(&[0, 2], &traces).is_empty());
    }
}
