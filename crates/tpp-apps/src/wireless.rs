//! §2.3 "Other possibilities" — wireless link diagnosis.
//!
//! "TPPs are not just limited to wired networks; they can also be used
//! in wireless networks where access points can annotate end-host
//! packets with channel SNR which changes very quickly. Low-latency
//! access to such rapidly changing state is useful for network diagnosis
//! and fault localization."
//!
//! The classic diagnosis problem: packets are being lost — is the
//! *channel* fading, or is the AP's queue overflowing under congestion?
//! Loss alone cannot tell; per-packet reads of `Link:SnrDeciBel` *and*
//! `Queue:QueueSize` can. [`LinkHealthMonitor`] probes both per packet;
//! [`classify_loss`] attributes each loss epoch.

use tpp_host::{decode_echo, ProbeBuilder};
use tpp_isa::programs;
use tpp_netsim::{HostApp, HostCtx};
use tpp_wire::EthernetAddress;

/// One probe's view of one hop: channel and queue state together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSample {
    /// Probe send time, ns.
    pub t_ns: u64,
    /// `Switch:SwitchID`.
    pub switch_id: u32,
    /// `Link:SnrDeciBel` — channel quality in tenths of a dB.
    pub snr_decidb: u32,
    /// `Queue:QueueSize` — congestion state in bytes.
    pub queue_bytes: u32,
}

/// Probes a path, recording SNR + queue per hop per probe.
#[derive(Debug)]
pub struct LinkHealthMonitor {
    dst: EthernetAddress,
    probe: ProbeBuilder,
    interval_ns: u64,
    stop_ns: u64,
    /// All samples in send order.
    pub samples: Vec<HealthSample>,
    /// Probes sent.
    pub probes_sent: u64,
    /// Echoes decoded.
    pub echoes_received: u64,
}

const WORDS_PER_HOP: usize = programs::WIRELESS_WORDS_PER_HOP;
const TIMER_PROBE: u64 = 1;

impl LinkHealthMonitor {
    /// Probe the path to `dst` every `interval_ns` until `stop_ns`.
    pub fn new(dst: EthernetAddress, expected_hops: usize, interval_ns: u64, stop_ns: u64) -> Self {
        let program = programs::wireless_health();
        LinkHealthMonitor {
            dst,
            probe: ProbeBuilder::stack(&program, expected_hops),
            interval_ns,
            stop_ns,
            samples: Vec::new(),
            probes_sent: 0,
            echoes_received: 0,
        }
    }

    /// Samples for one switch, in time order.
    pub fn series_for(&self, switch_id: u32) -> Vec<HealthSample> {
        self.samples
            .iter()
            .copied()
            .filter(|s| s.switch_id == switch_id)
            .collect()
    }
}

impl HostApp for LinkHealthMonitor {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_timer(1, TIMER_PROBE);
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut HostCtx<'_>) {
        if ctx.now() >= self.stop_ns {
            return;
        }
        let stamp = ctx.now().to_be_bytes();
        ctx.send(self.probe.build_frame_with_payload(
            self.dst,
            ctx.mac(),
            &stamp,
            tpp_host::DATA_ETHERTYPE.0,
        ));
        self.probes_sent += 1;
        ctx.set_timer(self.interval_ns, TIMER_PROBE);
    }

    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        let Some(sample) = decode_echo(&frame, ctx.mac(), WORDS_PER_HOP) else {
            return;
        };
        let t_ns = tpp_host::parse_echo(&frame, ctx.mac())
            .and_then(|tpp| {
                let inner = tpp.inner_payload();
                (inner.len() >= 8)
                    .then(|| u64::from_be_bytes(inner[0..8].try_into().expect("8 bytes")))
            })
            .unwrap_or_else(|| ctx.now());
        self.echoes_received += 1;
        for hop in sample.hops {
            self.samples.push(HealthSample {
                t_ns,
                switch_id: hop.words[0],
                snr_decidb: hop.words[1],
                queue_bytes: hop.words[2],
            });
        }
    }
}

/// A diagnosed cause of packet loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LossCause {
    /// The channel SNR was below the fade threshold around the loss.
    ChannelFade,
    /// The egress queue was near its limit around the loss.
    Congestion,
    /// Neither signal explains it (or no sample close enough in time).
    Unknown,
}

/// Diagnosis thresholds.
#[derive(Debug, Clone, Copy)]
pub struct DiagnosisConfig {
    /// SNR at/below which the channel counts as fading, deci-dB.
    pub fade_snr_decidb: u32,
    /// Queue occupancy at/above which congestion is implicated, bytes.
    pub congestion_queue_bytes: u32,
    /// How far (ns) a health sample may be from the loss time and still
    /// count as evidence.
    pub max_sample_distance_ns: u64,
}

/// Attribute one loss (at `loss_t_ns`) using the health samples of the
/// suspect hop.
///
/// Congestion wins ties: a full queue drops deterministically, so it is
/// the stronger explanation even in a fade.
pub fn classify_loss(
    samples: &[HealthSample],
    loss_t_ns: u64,
    config: &DiagnosisConfig,
) -> LossCause {
    let nearest = samples.iter().min_by_key(|s| s.t_ns.abs_diff(loss_t_ns));
    let Some(s) = nearest else {
        return LossCause::Unknown;
    };
    if s.t_ns.abs_diff(loss_t_ns) > config.max_sample_distance_ns {
        return LossCause::Unknown;
    }
    if s.queue_bytes >= config.congestion_queue_bytes {
        return LossCause::Congestion;
    }
    if s.snr_decidb <= config.fade_snr_decidb {
        return LossCause::ChannelFade;
    }
    LossCause::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DiagnosisConfig {
        DiagnosisConfig {
            fade_snr_decidb: 150, // 15 dB
            congestion_queue_bytes: 50_000,
            max_sample_distance_ns: 1_000_000,
        }
    }

    fn sample(t_ns: u64, snr: u32, q: u32) -> HealthSample {
        HealthSample {
            t_ns,
            switch_id: 1,
            snr_decidb: snr,
            queue_bytes: q,
        }
    }

    #[test]
    fn fade_attributed_to_channel() {
        let samples = vec![
            sample(0, 300, 0),
            sample(1_000, 80, 0),
            sample(2_000, 310, 0),
        ];
        assert_eq!(
            classify_loss(&samples, 1_100, &cfg()),
            LossCause::ChannelFade
        );
    }

    #[test]
    fn full_queue_attributed_to_congestion() {
        let samples = vec![sample(0, 300, 60_000)];
        assert_eq!(classify_loss(&samples, 100, &cfg()), LossCause::Congestion);
    }

    #[test]
    fn congestion_wins_over_simultaneous_fade() {
        let samples = vec![sample(0, 80, 60_000)];
        assert_eq!(classify_loss(&samples, 0, &cfg()), LossCause::Congestion);
    }

    #[test]
    fn healthy_signals_give_unknown() {
        let samples = vec![sample(0, 300, 100)];
        assert_eq!(classify_loss(&samples, 0, &cfg()), LossCause::Unknown);
    }

    #[test]
    fn stale_samples_give_unknown() {
        let samples = vec![sample(0, 80, 0)];
        assert_eq!(
            classify_loss(&samples, 10_000_000, &cfg()),
            LossCause::Unknown
        );
        assert_eq!(classify_loss(&[], 0, &cfg()), LossCause::Unknown);
    }
}
