//! §2.2 — RCP\*: "an end-host implementation of RCP".
//!
//! "The implementation consists of a rate limiter and a rate controller
//! at end-hosts for every flow. ... Each flow's rate controller
//! periodically queries and modifies network state in three phases."
//!
//! * **Phase 1 — Collect.** A TPP pushes, per hop: switch ID, queue size,
//!   the RX byte counter, link capacity, and the link's shared fair-share
//!   rate register. "The receiver simply echos a fully executed TPP back
//!   to the sender." Two deliberate deltas from the paper's 4-PUSH
//!   listing, both host-side choices the interface makes cheap: we push
//!   `Link:CapacityKbps` so heterogeneous links work without out-of-band
//!   knowledge (5 instructions — still exactly the §3.3 budget), and we
//!   read the *byte counter* rather than the `RX-Utilization` EWMA
//!   register, deriving y(t) from deltas between successive probes. The
//!   EWMA register quantizes too coarsely at per-ms granularity for a
//!   stable control loop (we measured ±40% sample noise); counting bytes
//!   over the control period is what hardware RCP itself does.
//! * **Phase 2 — Compute.** The sender runs the RCP control equation
//!   (shared, verbatim, with the in-router reference:
//!   [`tpp_rcp_ref::equation::rcp_update`]) for every link on the path.
//! * **Phase 3 — Update.** "Since the rate-controller clearly knows the
//!   bottleneck link from the values of R_link (the minimum), it sends a
//!   TPP that only executes on the bottleneck switch link": a `CEXEC` on
//!   the switch ID guarding a `STORE` to the rate register. "(Note that
//!   the end-host need not know the actual route to reach the bottleneck
//!   switch link.)"
//!
//! The flow's own pacing rate is min over links of R_link, applied to the
//! per-flow rate limiter ([`tpp_host::PacedSender`]).
//!
//! The fair-share registers live in per-link scratch SRAM
//! (`Link:Scratch[0]`, symbol `Link:RCP-RateRegister`, allocated by the
//! control-plane agent) and are initialized to link capacity: "we assume
//! a control plane program initializes each link's fair share rate to its
//! capacity" (§2.2, footnote 3). Units: kbit/s, so a u32 register covers
//! up to ~4 Tb/s.

use std::collections::BTreeMap;

use tpp_host::{
    decode_echo, PacedSender, ProbeBuilder, ProbeDelivery, ProbeManager, RetryPolicy, RttEstimator,
};
use tpp_isa::{Assembler, SymbolTable, VirtAddr};
use tpp_netsim::{HostApp, HostCtx};
use tpp_rcp_ref::equation::{rcp_update, RcpParams};
use tpp_wire::EthernetAddress;

/// The per-link SRAM word holding the RCP fair-share rate (allocated as
/// `Link:Scratch[0]` by the control plane).
pub const RCP_RATE_REGISTER: VirtAddr = VirtAddr(0x4000);

/// The per-link SRAM word holding the time (µs, wrapping u32) of the
/// most recent rate-register update by *any* flow (`Link:Scratch[1]`).
///
/// This second word is what makes many concurrent per-flow controllers
/// sum to one correctly-gained control loop: each flow scales its
/// multiplicative step by the time elapsed since the previous update,
/// whoever made it, so N flows updating N times as often each take steps
/// N times smaller. Without it the loop gain grows with the number of
/// flows and the shared register limit-cycles between its clamps.
pub const RCP_TS_REGISTER: VirtAddr = VirtAddr(0x4004);

/// Words pushed per hop by the collect TPP.
pub const COLLECT_WORDS_PER_HOP: usize = 7;

const TIMER_PACE: u64 = 1;
const TIMER_CONTROL: u64 = 2;

/// A symbol table with the control-plane RCP symbols registered.
pub fn rcp_symbols() -> SymbolTable {
    let mut table = SymbolTable::new();
    table.register("Link:RCP-RateRegister", RCP_RATE_REGISTER);
    table.register("Link:RCP-Timestamp", RCP_TS_REGISTER);
    table
}

/// Assembly source of the Phase-1 collect TPP ([`COLLECT_WORDS_PER_HOP`]
/// words per hop). `y_from_byte_counter` selects the offered-load
/// source (see [`RcpStarConfig::y_from_byte_counter`]).
fn collect_source(y_from_byte_counter: bool) -> String {
    let load_source = if y_from_byte_counter {
        "PUSH [Link:RX-Bytes]"
    } else {
        "PUSH [Link:RX-Utilization]"
    };
    format!(
        "PUSH [Switch:SwitchID]\n\
         PUSH [Link:QueueSize]\n\
         {load_source}\n\
         PUSH [Link:CapacityKbps]\n\
         PUSH [Link:RCP-RateRegister]\n\
         PUSH [Link:RCP-Timestamp]\n\
         PUSH [Switch:BootEpoch]"
    )
}

/// A ready-to-mint collect probe for the closed-loop transport: the
/// same 7-word program RCP\* Phase 1 uses, sized for `expected_hops`.
/// Send it with a [`rate_probe_payload`] so it rides its flow's ECMP
/// path, and decode the echo with [`decode_rate_echo`].
pub fn rate_collect_probe(expected_hops: usize) -> ProbeBuilder {
    let asm = Assembler::with_symbols(rcp_symbols());
    let collect = asm.assemble(&collect_source(true)).expect("static program");
    ProbeBuilder::stack(&collect, expected_hops)
}

/// Inner payload of a transport rate probe. Follows the flow-label
/// convention of `tpp-netsim::routing` (magic at bytes 0..2, flow key
/// at 16..24) so ECMP hashes the probe onto the same path as the
/// flow's data segments, and embeds the send timestamp at bytes 8..16
/// for RTT sampling from the echo. Byte 2 is zero, so the payload can
/// never be mistaken for a transport DATA/ACK segment.
pub fn rate_probe_payload(key: u64, now_ns: u64) -> [u8; 24] {
    let mut p = [0u8; 24];
    p[0] = 0xF1;
    p[1] = 0xC7;
    p[8..16].copy_from_slice(&now_ns.to_be_bytes());
    p[16..24].copy_from_slice(&key.to_be_bytes());
    p
}

/// Decoded feedback of one echoed transport rate probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RateEcho {
    /// Path bottleneck rate, bits/s: the minimum over hops of the RCP
    /// fair-share register (capacity where the register reads wiped).
    pub rate_bps: u64,
    /// The flow key stamped into the probe payload.
    pub key: u64,
    /// The probe's send timestamp (RTT = receive time − this).
    pub sent_ns: u64,
    /// `(switch id, boot epoch)` per hop — reboot detection for the
    /// transport's path-epoch reset.
    pub epochs: Vec<(u32, u32)>,
}

/// Decode an echoed [`rate_collect_probe`] frame addressed to `my_mac`.
///
/// Returns `None` for anything that is not a fully-executed, echoed
/// collect probe carrying a [`rate_probe_payload`]. This is the
/// native-mode Phase-1 read (the paper's in-band mechanism): the rate
/// comes from the registers the TPP gathered, not from simulator
/// ground truth.
pub fn decode_rate_echo(frame: &[u8], my_mac: EthernetAddress) -> Option<RateEcho> {
    let sample = decode_echo(frame, my_mac, COLLECT_WORDS_PER_HOP)?;
    let tpp = tpp_host::parse_echo(frame, my_mac)?;
    let inner = tpp.inner_payload();
    if inner.len() < 24 || inner[0..2] != [0xF1, 0xC7] {
        return None;
    }
    let sent_ns = u64::from_be_bytes(inner[8..16].try_into().expect("length checked"));
    let key = u64::from_be_bytes(inner[16..24].try_into().expect("length checked"));
    let mut rate_bps: Option<u64> = None;
    let mut epochs = Vec::with_capacity(sample.hops.len());
    for hop in &sample.hops {
        let [sid, _q, _rx, cap_kbps, reg_kbps, _ts, epoch] = hop.words[..7] else {
            continue;
        };
        epochs.push((sid, epoch));
        let cap = cap_kbps as u64 * 1_000;
        if cap == 0 {
            continue;
        }
        // A wiped (rebooted) register reads 0: fall back to capacity.
        let reg = if reg_kbps == 0 {
            cap
        } else {
            reg_kbps as u64 * 1_000
        };
        rate_bps = Some(rate_bps.map_or(reg, |r| r.min(reg)));
    }
    Some(RateEcho {
        rate_bps: rate_bps?,
        key,
        sent_ns,
        epochs,
    })
}

/// Configuration of one RCP\* flow.
#[derive(Debug, Clone, Copy)]
pub struct RcpStarConfig {
    /// RCP gain α (paper: 0.5).
    pub alpha: f64,
    /// RCP gain β (paper: 1.0).
    pub beta: f64,
    /// Control period: probe + update interval, ns.
    pub period_ns: u64,
    /// RTT assumed before the first measurement, ns.
    pub initial_rtt_ns: u64,
    /// Data payload size, bytes.
    pub payload_len: usize,
    /// Sending rate before the first feedback arrives, bits/s.
    pub init_rate_bps: u64,
    /// Packet-memory sizing: maximum hops on the path (§2.1
    /// preallocation rule).
    pub expected_hops: usize,
    /// When the flow starts, ns.
    pub start_ns: u64,
    /// When the flow stops (`u64::MAX` = never).
    pub stop_ns: u64,
    /// EWMA weight for per-link queue averaging across probes
    /// (Phase 2 "computes the average queue sizes").
    pub queue_ewma_alpha: f64,
    /// Derive y(t) from `Link:RX-Bytes` counter deltas (default) instead
    /// of the coarse `Link:RX-Utilization` EWMA register. Ablation knob.
    pub y_from_byte_counter: bool,
    /// Scale each update's gain by the time since *any* flow last wrote
    /// the register (the shared-timestamp scheme; default). When off,
    /// every flow applies a full control period of gain and the shared
    /// register limit-cycles as flow count grows. Ablation knob.
    pub gain_normalization: bool,
    /// Bound each multiplicative rate step to [1/2, 2] (default). When
    /// off, a transient queue spike can crash the rate to the floor.
    /// Ablation knob.
    pub step_clamp: bool,
    /// Finite flow size: stop after this many payload bytes (`None` =
    /// long-lived). Used by the flow-completion-time experiments.
    pub stop_after_bytes: Option<u64>,
    /// When true (default), the end-host runs Phases 2 and 3 — the full
    /// RCP\* refactoring. When false, the sender only *reads* the rate
    /// register and paces at the path minimum: the sender half of the
    /// "native RCP router" counterfactual, where the ASIC computes the
    /// law itself and TPPs merely distribute the result.
    pub compute_updates: bool,
}

impl Default for RcpStarConfig {
    fn default() -> Self {
        RcpStarConfig {
            alpha: 0.5,
            beta: 1.0,
            period_ns: 10_000_000, // 10 ms
            initial_rtt_ns: 5_000_000,
            payload_len: 1000,
            init_rate_bps: 500_000,
            expected_hops: 4,
            start_ns: 0,
            stop_ns: u64::MAX,
            queue_ewma_alpha: 0.5,
            y_from_byte_counter: true,
            gain_normalization: true,
            step_clamp: true,
            stop_after_bytes: None,
            compute_updates: true,
        }
    }
}

/// Per-link state a flow maintains from collect echoes.
#[derive(Debug, Clone, Copy)]
struct LinkView {
    switch_id: u32,
    capacity_bps: f64,
    q_ewma_bytes: f64,
    /// Last raw `Link:RX-Bytes` reading (wrapping u32) and its time.
    prev_counter: Option<(u32, u64)>,
    y_ewma_bps: Option<f64>,
    last_register_bps: f64,
    r_computed_bps: f64,
}

/// One RCP\* sender: rate limiter + rate controller for a single flow.
#[derive(Debug)]
pub struct RcpStarSender {
    config: RcpStarConfig,
    dst: EthernetAddress,
    sender: PacedSender,
    collect_probe: ProbeBuilder,
    update_asm: Assembler,
    rtt: RttEstimator,
    probes: ProbeManager,
    /// Keyed by hop index (stable for a fixed path).
    links: BTreeMap<usize, LinkView>,
    /// `(time ns, rate bps)` at every control decision — the Figure 2
    /// series.
    pub rate_trace: Vec<(u64, u64)>,
    /// Collect echoes processed.
    pub feedback_count: u64,
    /// Update TPPs sent.
    pub updates_sent: u64,
    /// Raw words of the most recent collect echo, per hop (diagnostics).
    pub debug_last_hops: Vec<Vec<u32>>,
    /// When the flow finished sending its `stop_after_bytes` (ns).
    pub completed_at: Option<u64>,
    running: bool,
}

impl RcpStarSender {
    /// A flow towards `dst`.
    pub fn new(dst: EthernetAddress, config: RcpStarConfig) -> Self {
        let asm = Assembler::with_symbols(rcp_symbols());
        let collect = asm
            .assemble(&collect_source(config.y_from_byte_counter))
            .expect("static program");
        RcpStarSender {
            sender: PacedSender::new(
                dst,
                config.payload_len,
                config.init_rate_bps,
                config.start_ns,
            ),
            collect_probe: ProbeBuilder::stack(&collect, config.expected_hops),
            update_asm: asm,
            rtt: RttEstimator::new(),
            // Periodic probes are never re-sent — the next control round
            // supersedes them — but the nonce layer still dedups echoes
            // duplicated in flight, and expiry counts lost probes.
            probes: ProbeManager::new(RetryPolicy {
                timeout_ns: 2 * config.period_ns,
                max_retries: 0,
                jitter_permille: 0,
            }),
            links: BTreeMap::new(),
            rate_trace: Vec::new(),
            feedback_count: 0,
            updates_sent: 0,
            debug_last_hops: Vec::new(),
            completed_at: None,
            running: false,
            config,
            dst,
        }
    }

    /// Current pacing rate, bits/s.
    pub fn rate_bps(&self) -> u64 {
        self.sender.rate_bps()
    }

    /// Total payload bytes released.
    pub fn bytes_sent(&self) -> u64 {
        self.sender.bytes_sent
    }

    /// The reliability layer's counters (lost probes, dedup hits,
    /// boot-epoch changes observed).
    pub fn probe_stats(&self) -> tpp_host::ProbeStats {
        self.probes.stats()
    }

    /// The flow's current view of its bottleneck: `(switch id, R bps)`.
    pub fn bottleneck(&self) -> Option<(u32, f64)> {
        self.links
            .values()
            .min_by(|a, b| a.r_computed_bps.total_cmp(&b.r_computed_bps))
            .map(|l| (l.switch_id, l.r_computed_bps))
    }

    /// True once the flow has sent its full size (finite flows only).
    pub fn finished(&self) -> bool {
        self.completed_at.is_some()
    }

    fn pace(&mut self, ctx: &mut HostCtx<'_>) {
        if ctx.now() >= self.config.stop_ns || self.finished() {
            self.running = false;
            return;
        }
        let now = ctx.now();
        while let Some(frame) = self.sender.poll(now, ctx.mac()) {
            ctx.send(frame);
            if let Some(target) = self.config.stop_after_bytes {
                if self.sender.bytes_sent >= target {
                    self.completed_at = Some(now);
                    self.running = false;
                    return;
                }
            }
        }
        let next = self.sender.next_tx_ns().saturating_sub(now).max(1);
        ctx.set_timer(next, TIMER_PACE);
    }

    /// Phase 1: send the collect probe (timestamped for RTT measurement).
    fn control(&mut self, ctx: &mut HostCtx<'_>) {
        if ctx.now() >= self.config.stop_ns || self.finished() {
            self.running = false;
            return;
        }
        let stamp = ctx.now().to_be_bytes();
        let frame = self.collect_probe.build_frame_with_payload(
            self.dst,
            ctx.mac(),
            &stamp,
            tpp_host::DATA_ETHERTYPE.0,
        );
        self.probes.track(frame, ctx);
        ctx.set_timer(self.config.period_ns, TIMER_CONTROL);
    }

    /// Phases 2 + 3, on a collect echo.
    fn on_feedback(&mut self, frame: &[u8], ctx: &mut HostCtx<'_>) {
        let Some(sample) = decode_echo(frame, ctx.mac(), COLLECT_WORDS_PER_HOP) else {
            return;
        };
        // RTT from the echoed timestamp we embedded in the inner payload.
        if let Some(tpp) = tpp_host::parse_echo(frame, ctx.mac()) {
            let inner = tpp.inner_payload();
            if inner.len() >= 8 {
                let sent = u64::from_be_bytes(inner[0..8].try_into().expect("8 bytes"));
                self.rtt.on_sample(ctx.now().saturating_sub(sent));
            }
        }
        if sample.hops.is_empty() {
            return;
        }
        self.feedback_count += 1;
        self.debug_last_hops = sample.hops.iter().map(|h| h.words.clone()).collect();

        if !self.config.compute_updates {
            // Native-router mode: the register already holds the fair
            // share; just obey the path minimum.
            let r_min = sample
                .hops
                .iter()
                .filter_map(|h| {
                    let cap = h.words.get(3).copied()? as u64 * 1_000;
                    let reg = h.words.get(4).copied()? as u64 * 1_000;
                    // A wiped (rebooted) register reads 0: fall back to
                    // capacity rather than stalling the flow.
                    (cap > 0).then_some(if reg == 0 { cap } else { reg })
                })
                .min();
            if let Some(r) = r_min {
                self.sender.set_rate_bps(r.max(1_000), ctx.now());
                self.rate_trace.push((ctx.now(), r));
                if !self.running {
                    self.running = true;
                    ctx.set_timer(1, TIMER_PACE);
                }
            }
            return;
        }

        // --- Phase 2: Compute. ---
        let period_s = self.config.period_ns as f64 / 1e9;
        // RCP assumes at most one update per RTT (T <= d); when probes
        // run slower than the RTT, the effective d is the control period
        // or the loop gain T/d exceeds 1 and the rate limit-cycles.
        let rtt_s = (self.rtt.srtt_or(self.config.initial_rtt_ns) as f64 / 1e9).max(period_s);
        let now = ctx.now();
        for hop in &sample.hops {
            let [sid, q_bytes, rx_bytes, cap_kbps, reg_kbps, reg_ts_us, epoch] = hop.words[..7]
            else {
                continue;
            };
            let capacity_bps = cap_kbps as f64 * 1e3;
            if capacity_bps <= 0.0 {
                continue;
            }
            if self.probes.note_epoch(sid, epoch, ctx) {
                // The switch rebooted and lost its SRAM: the cached view
                // (byte-counter baseline, EWMAs) describes the previous
                // boot. Drop it and re-seed from this echo.
                self.links.remove(&hop.hop);
            }
            // A zero rate register is wiped state (the control plane
            // seeds it to capacity at boot, §2.2 footnote 3): re-seed
            // the control law from capacity, exactly like a fresh start.
            let reg_kbps = if reg_kbps == 0 { cap_kbps } else { reg_kbps };
            let view = self.links.entry(hop.hop).or_insert(LinkView {
                switch_id: sid,
                capacity_bps,
                q_ewma_bytes: q_bytes as f64,
                prev_counter: None,
                y_ewma_bps: None,
                last_register_bps: reg_kbps as f64 * 1e3,
                r_computed_bps: capacity_bps,
            });
            view.switch_id = sid;
            view.capacity_bps = capacity_bps;
            let a = self.config.queue_ewma_alpha;
            view.q_ewma_bytes = a * q_bytes as f64 + (1.0 - a) * view.q_ewma_bytes;
            view.last_register_bps = reg_kbps as f64 * 1e3;

            // Offered load y(t): either from the wrapping byte counter
            // delta between successive probes (precise; default), or
            // straight from the utilization EWMA register (ablation).
            let y_sample_bps = if self.config.y_from_byte_counter {
                let Some((prev_bytes, prev_t)) = view.prev_counter.replace((rx_bytes, now)) else {
                    continue; // first reading: no delta yet
                };
                let dt_s = now.saturating_sub(prev_t) as f64 / 1e9;
                if dt_s <= 0.0 {
                    continue;
                }
                rx_bytes.wrapping_sub(prev_bytes) as f64 * 8.0 / dt_s
            } else {
                // `rx_bytes` carries the RX-Utilization per-mille here.
                rx_bytes as f64 / 1000.0 * capacity_bps
            };
            let y_bps = match view.y_ewma_bps {
                Some(prev) => 0.5 * y_sample_bps + 0.5 * prev,
                None => y_sample_bps,
            };
            view.y_ewma_bps = Some(y_bps);

            // Effective control interval: time since *any* flow last
            // updated this link's register (measured in switch-visible
            // wrapping microseconds), capped at our own probe period.
            let t_eff_s = if self.config.gain_normalization {
                let now_us = (now / 1_000) as u32;
                (now_us.wrapping_sub(reg_ts_us) as f64 / 1e6)
                    .min(period_s)
                    .max(1e-6)
            } else {
                period_s
            };
            let params = RcpParams {
                alpha: self.config.alpha,
                beta: self.config.beta,
                period_s: t_eff_s,
                rtt_s: rtt_s.max(t_eff_s),
                capacity_bps,
                min_rate_bps: capacity_bps * 1e-3,
                step_bound: if self.config.step_clamp {
                    2.0
                } else {
                    f64::INFINITY
                },
            };
            view.r_computed_bps =
                rcp_update(view.last_register_bps, y_bps, view.q_ewma_bytes, &params);
        }

        // --- Phase 3: Update the bottleneck's register. ---
        let Some((bottleneck_sid, r_min_bps)) = self.bottleneck() else {
            return;
        };
        let r_kbps = (r_min_bps / 1e3).round().max(1.0) as u32;
        let update = self
            .update_asm
            .assemble(
                "CEXEC [Switch:SwitchID], [Packet:0]\n\
                 STORE [Link:RCP-RateRegister], [Packet:2]\n\
                 STORE [Link:RCP-Timestamp], [Packet:3]",
            )
            .expect("static program");
        let now_us = (ctx.now() / 1_000) as u32;
        let probe = ProbeBuilder::stack(&update, 1).init_memory(&[
            0xffff_ffff,
            bottleneck_sid,
            r_kbps,
            now_us,
        ]);
        self.probes
            .track(probe.build_frame(self.dst, ctx.mac()), ctx);
        self.updates_sent += 1;

        // The flow itself obeys the minimum along the path.
        self.sender.set_rate_bps(r_min_bps as u64, ctx.now());
        self.rate_trace.push((ctx.now(), r_min_bps as u64));
        if !self.running {
            // (Re)start pacing if feedback arrives while the pacer is
            // idle (e.g. the very first feedback).
            self.running = true;
            ctx.set_timer(1, TIMER_PACE);
        }
    }
}

impl HostApp for RcpStarSender {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.running = true;
        ctx.set_timer(self.config.start_ns, TIMER_PACE);
        ctx.set_timer(self.config.start_ns, TIMER_CONTROL);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut HostCtx<'_>) {
        match token {
            TIMER_PACE => self.pace(ctx),
            TIMER_CONTROL => self.control(ctx),
            t if ProbeManager::is_timer(t) => {
                // Expired probes are only counted (stats.timeouts): the
                // periodic control loop re-probes on its own schedule.
                let _ = self.probes.on_timer(ctx);
            }
            _ => {}
        }
    }

    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        match self.probes.on_frame(&frame, ctx) {
            // A late echo (RTT spiked past the probe timeout) is still
            // this round's only copy of the feedback — exactly when the
            // controller most needs to see the queue and back off.
            ProbeDelivery::Fresh { .. } | ProbeDelivery::Late { .. } => {
                self.on_feedback(&frame, ctx)
            }
            // A duplicated or stale echo must not feed the control loop
            // twice (a double byte-counter delta would halve y(t)).
            ProbeDelivery::Duplicate { .. } | ProbeDelivery::NotAProbe => {}
        }
    }
}

/// Initialize the RCP rate registers of every port of a switch to that
/// port's capacity (the §2.2 footnote-3 control-plane step). Call once
/// per switch before the run.
pub fn init_rate_registers(asic: &mut tpp_asic::Asic) {
    for port in 0..asic.num_ports() as tpp_asic::PortId {
        let kbps = asic.port_capacity_kbps(port);
        asic.link_sram_mut(port)
            .and_then(|mut sram| sram.set_word(RCP_RATE_REGISTER.word_index(), kbps))
            .expect("RCP rate register out of the link SRAM region");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_host::EchoReceiver;
    use tpp_netsim::RunLimit;
    use tpp_netsim::{dumbbell, time, DumbbellParams, Simulator};

    /// A 10 Mb/s dumbbell with `n` RCP* flows starting at the given
    /// times; returns the simulator and handles.
    fn rcp_net(starts_ns: &[u64]) -> (Simulator, tpp_netsim::Dumbbell) {
        let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = starts_ns
            .iter()
            .enumerate()
            .map(|(i, start)| {
                let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
                let cfg = RcpStarConfig {
                    start_ns: *start,
                    ..Default::default()
                };
                (
                    Box::new(RcpStarSender::new(dst, cfg)) as Box<dyn HostApp>,
                    Box::new(EchoReceiver::default()) as Box<dyn HostApp>,
                )
            })
            .collect();
        let (mut sim, bell) = dumbbell(
            DumbbellParams {
                n_pairs: starts_ns.len(),
                ..Default::default()
            },
            apps,
        );
        for sw in [bell.left, bell.right] {
            init_rate_registers(sim.switch_mut(sw));
        }
        (sim, bell)
    }

    fn mean_rate_in_window(trace: &[(u64, u64)], lo_ns: u64, hi_ns: u64) -> Option<f64> {
        let w: Vec<u64> = trace
            .iter()
            .filter(|(t, _)| *t >= lo_ns && *t < hi_ns)
            .map(|(_, r)| *r)
            .collect();
        if w.is_empty() {
            return None;
        }
        Some(w.iter().sum::<u64>() as f64 / w.len() as f64)
    }

    #[test]
    fn single_flow_converges_to_capacity() {
        let (mut sim, bell) = rcp_net(&[0]);
        sim.run(RunLimit::Until(time::secs(5)));
        let sender = sim.host_app::<RcpStarSender>(bell.senders[0]);
        assert!(sender.feedback_count > 100, "control loop ran");
        assert!(sender.updates_sent > 100, "phase 3 ran");
        let late =
            mean_rate_in_window(&sender.rate_trace, time::secs(3), time::secs(5)).expect("samples");
        let r_over_c = late / 10e6;
        assert!(
            (r_over_c - 1.0).abs() < 0.1,
            "single flow should get the whole link, got R/C = {r_over_c}"
        );
    }

    #[test]
    fn second_flow_halves_the_rate() {
        let (mut sim, bell) = rcp_net(&[0, time::secs(5)]);
        sim.run(RunLimit::Until(time::secs(10)));
        let s0 = sim.host_app::<RcpStarSender>(bell.senders[0]);
        let late0 =
            mean_rate_in_window(&s0.rate_trace, time::secs(8), time::secs(10)).expect("samples");
        let s1 = sim.host_app::<RcpStarSender>(bell.senders[1]);
        let late1 =
            mean_rate_in_window(&s1.rate_trace, time::secs(8), time::secs(10)).expect("samples");
        for (name, rate) in [("flow0", late0), ("flow1", late1)] {
            let r_over_c = rate / 10e6;
            assert!(
                (r_over_c - 0.5).abs() < 0.12,
                "{name}: expected ~C/2, got R/C = {r_over_c}"
            );
        }
    }

    #[test]
    fn bottleneck_identified_and_register_written() {
        let (mut sim, bell) = rcp_net(&[0]);
        sim.run(RunLimit::Until(time::secs(2)));
        let sender = sim.host_app::<RcpStarSender>(bell.senders[0]);
        let (sid, _) = sender.bottleneck().expect("bottleneck known");
        // The left switch (id 1) owns the 10 Mb/s egress on this path.
        assert_eq!(sid, 1, "bottleneck is the left switch's egress");
        // And its rate register was actually rewritten below capacity.
        let reg = sim
            .switch(bell.left)
            .link_sram(bell.bottleneck_port)
            .and_then(|s| s.word(RCP_RATE_REGISTER.word_index()))
            .unwrap();
        assert!(reg > 0 && reg <= 10_000, "register holds kbps: {reg}");
    }

    #[test]
    fn queues_stay_small_in_steady_state() {
        let (mut sim, bell) = rcp_net(&[0, 0, 0]);
        sim.run(RunLimit::Until(time::secs(6)));
        // After convergence the bottleneck queue should be nearly empty —
        // the RCP promise (vs AIMD's standing queues).
        let q = sim
            .switch(bell.left)
            .queue_len_bytes(bell.bottleneck_port, 0);
        assert!(q < 30_000, "standing queue of {q} bytes");
        // And the three flows got roughly C/3 each (goodput check).
        for r in &bell.receivers {
            let echo = sim.host_app::<EchoReceiver>(*r);
            let goodput = echo.data_bytes as f64 * 8.0 / 6.0;
            assert!(
                goodput > 0.2 * 10e6 && goodput < 0.45 * 10e6,
                "goodput {goodput:.0} not near C/3"
            );
        }
    }
}
