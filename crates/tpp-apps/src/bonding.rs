//! Probe-driven NIC bonding over a multi-homed host pair.
//!
//! The paper's thesis is that a trivial in-network program plus an
//! expressive end-host task replaces bespoke control protocols. This
//! module applies it to link bonding: a host with several NICs, each
//! wired to a disjoint path, steers traffic using *only* what
//! `bonding_collect()` TPPs bring back — per-hop queue depth, TX
//! utilization, and switch boot epochs. No routing protocol, no
//! out-of-band health checks.
//!
//! [`BondSender`] runs one [`ProbeManager`] per path (distinct nonce
//! salts so streams never collide) and feeds a
//! [`tpp_host::BondScheduler`]: probe echoes update path weights,
//! probe timeouts and epoch changes trigger failover. Data frames are
//! sequenced, spread across paths by the scheduler, optionally
//! duplicated when the chosen path is suspect, and retransmitted from
//! a sender-side unacked buffer until the peer's ACK arrives.
//!
//! [`BondReceiver`] echoes probes on their arrival NIC, deduplicates
//! data by sequence number (so duplication and retransmission never
//! reach the application twice), and ACKs every copy — exactly-once
//! delivery end to end, over paths that flap, degrade, and reboot.

use std::collections::{BTreeMap, BTreeSet};

use tpp_host::{
    decode_echo, echo_reply, parse_echo, BondConfig, BondScheduler, ProbeBuilder, ProbeDelivery,
    ProbeManager, RetryPolicy, DATA_ETHERTYPE,
};
use tpp_isa::programs;
use tpp_netsim::{HostApp, HostCtx};
use tpp_wire::ethernet::{build_frame, EtherType, Frame};
use tpp_wire::EthernetAddress;

const WORDS_PER_HOP: usize = programs::BONDING_WORDS_PER_HOP;
/// Plain-data ethertype (distinct from TPP and from the probe's inner
/// payload ethertype).
const BOND_ETHERTYPE: EtherType = EtherType(0x0800);
const TIMER_PROBE: u64 = 1;
const TIMER_DATA: u64 = 2;
const TIMER_RTO: u64 = 3;
const DATA_MAGIC: &[u8; 4] = b"BOND";
const ACK_MAGIC: &[u8; 4] = b"BACK";

/// Timing and sizing for a [`BondSender`].
#[derive(Debug, Clone)]
pub struct BondSenderConfig {
    /// Peer MAC (the [`BondReceiver`]'s host).
    pub dst: EthernetAddress,
    /// Hops each probe must fit (2 × switches on the path: out + back).
    pub expected_hops: usize,
    /// One probe per path every this many ns, from t=0…
    pub probe_interval_ns: u64,
    /// A probe unanswered this long counts as a miss. Must comfortably
    /// exceed the path RTT or every probe is charged as lost.
    pub probe_timeout_ns: u64,
    /// …until this time (probing outlives the data flow so failback is
    /// observable).
    pub probe_stop_ns: u64,
    /// One data frame every this many ns…
    pub data_interval_ns: u64,
    /// …in `[data_start_ns, data_stop_ns)`.
    pub data_start_ns: u64,
    /// End of the data flow.
    pub data_stop_ns: u64,
    /// Payload size of each data frame (≥ 12 for magic + sequence).
    pub payload_bytes: usize,
    /// Retransmit an unacked frame after this long.
    pub rto_ns: u64,
    /// Scheduler tuning.
    pub bond: BondConfig,
}

/// The sending side of the bond: probing, scheduling, retransmission.
#[derive(Debug)]
pub struct BondSender {
    cfg: BondSenderConfig,
    probe: ProbeBuilder,
    /// One manager per path; salts keep their nonce streams disjoint.
    probes: Vec<ProbeManager>,
    /// Outstanding probe nonce → path it went down.
    nonce_path: BTreeMap<u64, usize>,
    /// The scheduler (public so benches can read its event log and
    /// per-path series).
    pub bond: BondScheduler,
    next_seq: u64,
    /// seq → (payload, retransmit deadline).
    unacked: BTreeMap<u64, (Vec<u8>, u64)>,
    /// Probes sent per path.
    pub probes_sent: Vec<u64>,
    /// Echoes decoded per path.
    pub echoes_received: Vec<u64>,
    /// Data frames (first copies) sent per path.
    pub data_sent: Vec<u64>,
    /// Redundant copies sent (degraded-path duplication).
    pub duplicates_sent: u64,
    /// RTO-driven retransmissions.
    pub retransmits: u64,
    /// Sequences acknowledged by the peer.
    pub acked: u64,
    /// `(first_send_t_ns, ack_latency_ns)` per acked sequence, in ack
    /// order.
    pub ack_latencies: Vec<(u64, u64)>,
    /// Boot-epoch changes observed via probes.
    pub epoch_changes: u64,
    first_send: BTreeMap<u64, u64>,
}

impl BondSender {
    /// A sender for `cfg.bond.paths` NICs (NIC *i* ⇔ path *i*).
    pub fn new(cfg: BondSenderConfig) -> Self {
        assert!(cfg.payload_bytes >= 12, "payload must fit magic + seq");
        let n = cfg.bond.paths;
        let program = programs::bonding_collect();
        let probes = (0..n)
            .map(|p| {
                // One probe per interval; the next supersedes it, so no
                // retries — a timeout is itself the signal we're after.
                ProbeManager::new(RetryPolicy {
                    timeout_ns: cfg.probe_timeout_ns,
                    max_retries: 0,
                    jitter_permille: 0,
                })
                .with_port(p as u16)
                .with_salt(p as u64 + 1)
            })
            .collect();
        BondSender {
            probe: ProbeBuilder::stack(&program, cfg.expected_hops),
            probes,
            nonce_path: BTreeMap::new(),
            bond: BondScheduler::new(cfg.bond.clone()),
            next_seq: 0,
            unacked: BTreeMap::new(),
            probes_sent: vec![0; n],
            echoes_received: vec![0; n],
            data_sent: vec![0; n],
            duplicates_sent: 0,
            retransmits: 0,
            acked: 0,
            ack_latencies: Vec::new(),
            epoch_changes: 0,
            first_send: BTreeMap::new(),
            cfg,
        }
    }

    /// Data sequences sent (each delivered exactly once on success).
    pub fn sequences_sent(&self) -> u64 {
        self.next_seq
    }

    /// Sequences not yet acknowledged.
    pub fn unacked_len(&self) -> usize {
        self.unacked.len()
    }

    fn data_frame(&self, seq: u64) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.cfg.payload_bytes);
        payload.extend_from_slice(DATA_MAGIC);
        payload.extend_from_slice(&seq.to_be_bytes());
        payload.resize(self.cfg.payload_bytes, 0);
        payload
    }

    fn send_probe_round(&mut self, ctx: &mut HostCtx<'_>) {
        let stamp = ctx.now().to_be_bytes();
        for path in 0..self.probes.len() {
            let frame = self.probe.build_frame_with_payload(
                self.cfg.dst,
                ctx.mac(),
                &stamp,
                DATA_ETHERTYPE.0,
            );
            let nonce = self.probes[path].track(frame, ctx);
            self.nonce_path.insert(nonce, path);
            self.probes_sent[path] += 1;
        }
    }

    fn send_data(&mut self, ctx: &mut HostCtx<'_>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let payload = self.data_frame(seq);
        let frame = build_frame(self.cfg.dst, ctx.mac(), BOND_ETHERTYPE, &payload);
        let path = self.bond.pick();
        ctx.send_on(path as u16, frame.clone());
        self.data_sent[path] += 1;
        if let Some(dup) = self.bond.duplicate_target(path) {
            ctx.send_on(dup as u16, frame);
            self.duplicates_sent += 1;
        }
        self.first_send.insert(seq, ctx.now());
        self.unacked
            .insert(seq, (payload, ctx.now() + self.cfg.rto_ns));
    }

    fn resend_due(&mut self, ctx: &mut HostCtx<'_>) {
        let now = ctx.now();
        let due: Vec<u64> = self
            .unacked
            .iter()
            .filter(|(_, (_, deadline))| *deadline <= now)
            .map(|(&seq, _)| seq)
            .collect();
        for seq in due {
            let payload = self.unacked[&seq].0.clone();
            let frame = build_frame(self.cfg.dst, ctx.mac(), BOND_ETHERTYPE, &payload);
            // Re-pick: a retransmission should use the *current* best
            // path, not the one that just lost the frame.
            let path = self.bond.pick();
            ctx.send_on(path as u16, frame.clone());
            if let Some(dup) = self.bond.duplicate_target(path) {
                ctx.send_on(dup as u16, frame);
                self.duplicates_sent += 1;
            }
            self.retransmits += 1;
            self.unacked.get_mut(&seq).expect("due").1 = now + self.cfg.rto_ns;
        }
    }

    fn on_probe_echo(&mut self, frame: &[u8], ctx: &mut HostCtx<'_>) {
        let Some(nonce) = ProbeManager::frame_nonce(frame) else {
            return;
        };
        let Some(&path) = self.nonce_path.get(&nonce) else {
            return;
        };
        match self.probes[path].on_frame(frame, ctx) {
            // Telemetry stays valid when stale: the sample carries its
            // own stamp. (The loss was already charged on expiry; one
            // late echo then counts as a hit toward recovery, which is
            // exactly what "the path answered" means.)
            ProbeDelivery::Fresh { .. } | ProbeDelivery::Late { .. } => {}
            ProbeDelivery::Duplicate { .. } | ProbeDelivery::NotAProbe => return,
        }
        self.nonce_path.remove(&nonce);
        let Some(sample) = decode_echo(frame, ctx.mac(), WORDS_PER_HOP) else {
            return;
        };
        self.echoes_received[path] += 1;
        let mut epoch_changed = false;
        let mut worst_queue = 0u64;
        let mut worst_util = 0u64;
        for hop in &sample.hops {
            if hop.words.len() < WORDS_PER_HOP {
                continue;
            }
            let (switch_id, epoch) = (hop.words[0], hop.words[1]);
            if self.probes[path].note_epoch(switch_id, epoch, ctx) {
                epoch_changed = true;
            }
            worst_queue = worst_queue.max(hop.words[2] as u64);
            worst_util = worst_util.max(hop.words[3] as u64);
        }
        // Everything is stamped with arrival time — the instant the
        // scheduler actually learns it — so the health-event log is
        // monotone even when echoes come back out of order.
        if epoch_changed {
            self.epoch_changes += 1;
            self.bond.on_epoch_change(ctx.now(), path);
        } else {
            self.bond
                .on_sample(ctx.now(), path, worst_queue, worst_util);
        }
    }
}

impl HostApp for BondSender {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_timer(0, TIMER_PROBE);
        ctx.set_timer(self.cfg.data_start_ns, TIMER_DATA);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut HostCtx<'_>) {
        if ProbeManager::is_timer(token) {
            // Tokens carry the arming manager's port: route the wake-up
            // to that one manager only, so each fire re-arms at most one
            // replacement (fanning out would multiply timer events).
            let path = ProbeManager::timer_port(token) as usize;
            if path < self.probes.len() {
                for _nonce in self.probes[path].on_timer(ctx) {
                    // Keep the nonce→path entry: if the echo still shows
                    // up (`Late`), it's a valid sample and a recovery
                    // hit. The manager's own dedup window bounds how
                    // long that can happen.
                    self.bond.on_probe_loss(ctx.now(), path);
                }
            }
            return;
        }
        match token {
            TIMER_PROBE => {
                if ctx.now() >= self.cfg.probe_stop_ns {
                    return;
                }
                self.send_probe_round(ctx);
                ctx.set_timer(self.cfg.probe_interval_ns, TIMER_PROBE);
            }
            TIMER_DATA => {
                if ctx.now() >= self.cfg.data_stop_ns {
                    return;
                }
                self.send_data(ctx);
                if self.unacked.len() == 1 {
                    // First outstanding frame arms the RTO scan.
                    ctx.set_timer(self.cfg.rto_ns, TIMER_RTO);
                }
                ctx.set_timer(self.cfg.data_interval_ns, TIMER_DATA);
            }
            TIMER_RTO => {
                self.resend_due(ctx);
                // Keep scanning while anything is in flight; stop when
                // the flow is over and fully acked, so the run can go
                // quiescent.
                if !self.unacked.is_empty() {
                    ctx.set_timer(self.cfg.rto_ns, TIMER_RTO);
                }
            }
            _ => {}
        }
    }

    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        if parse_echo(&frame, ctx.mac()).is_some() {
            self.on_probe_echo(&frame, ctx);
            return;
        }
        let Ok(parsed) = Frame::new_checked(&frame[..]) else {
            return;
        };
        let payload = parsed.payload();
        if payload.len() >= 12 && &payload[0..4] == ACK_MAGIC {
            let seq = u64::from_be_bytes(payload[4..12].try_into().expect("8"));
            if self.unacked.remove(&seq).is_some() {
                self.acked += 1;
                let sent = self.first_send.get(&seq).copied().unwrap_or(ctx.now());
                self.ack_latencies
                    .push((sent, ctx.now().saturating_sub(sent)));
            }
        }
    }
}

/// The receiving side: echoes probes, dedups data, ACKs every copy.
#[derive(Debug, Default)]
pub struct BondReceiver {
    /// Sequences delivered to the "application", in delivery order —
    /// exactly once each.
    pub delivered: Vec<u64>,
    seen: BTreeSet<u64>,
    /// Redundant copies (duplication or retransmission) suppressed
    /// before the application saw them.
    pub duplicates_suppressed: u64,
    /// ACK frames sent (one per copy received, duplicates included —
    /// re-ACKing is what lets the sender stop retransmitting).
    pub acks_sent: u64,
    /// TPP probes echoed.
    pub tpps_echoed: u64,
    /// Data copies received per arrival NIC.
    pub rx_per_port: BTreeMap<u16, u64>,
}

impl HostApp for BondReceiver {
    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        if let Some(reply) = echo_reply(&frame, ctx.mac()) {
            self.tpps_echoed += 1;
            // Echo on the arrival NIC so the probe measures one path
            // both ways.
            ctx.send_on(ctx.rx_port(), reply);
            return;
        }
        let Ok(parsed) = Frame::new_checked(&frame[..]) else {
            return;
        };
        let payload = parsed.payload();
        if payload.len() < 12 || &payload[0..4] != DATA_MAGIC {
            return;
        }
        let seq = u64::from_be_bytes(payload[4..12].try_into().expect("8"));
        let port = ctx.rx_port();
        *self.rx_per_port.entry(port).or_insert(0) += 1;
        if self.seen.insert(seq) {
            self.delivered.push(seq);
        } else {
            self.duplicates_suppressed += 1;
        }
        // ACK every copy, on its arrival NIC: the original ACK may have
        // been lost with its path.
        let mut ack = Vec::with_capacity(12);
        ack.extend_from_slice(ACK_MAGIC);
        ack.extend_from_slice(&seq.to_be_bytes());
        let reply = build_frame(parsed.src_addr(), ctx.mac(), BOND_ETHERTYPE, &ack);
        ctx.send_on(port, reply);
        self.acks_sent += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_netsim::{bonded_diamond, time, BondedDiamondParams, RunLimit};

    fn sender_cfg(paths: usize) -> BondSenderConfig {
        BondSenderConfig {
            dst: EthernetAddress::from_host_id(1),
            expected_hops: 4,
            probe_interval_ns: time::micros(50),
            probe_timeout_ns: time::micros(300),
            probe_stop_ns: time::millis(5),
            data_interval_ns: time::micros(20),
            data_start_ns: time::micros(500),
            data_stop_ns: time::millis(4),
            payload_bytes: 500,
            rto_ns: time::micros(400),
            bond: BondConfig {
                paths,
                ..BondConfig::default()
            },
        }
    }

    #[test]
    fn clean_bond_delivers_every_sequence_exactly_once() {
        let (mut sim, d) = bonded_diamond(
            BondedDiamondParams::default(),
            Box::new(BondSender::new(sender_cfg(2))),
            Box::new(BondReceiver::default()),
        );
        sim.run(RunLimit::Quiescent {
            limit_ns: time::millis(20),
        });
        let rx = sim.host_app::<BondReceiver>(d.receiver);
        let delivered = rx.delivered.clone();
        let suppressed = rx.duplicates_suppressed;
        let tx = sim.host_app::<BondSender>(d.sender);
        let sent = tx.sequences_sent();
        assert!(sent > 100, "flow actually ran: {sent}");
        assert_eq!(delivered.len() as u64, sent, "every sequence arrived");
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), delivered.len(), "no duplicate delivery");
        assert_eq!(suppressed, 0, "clean network: nothing to suppress");
        assert_eq!(tx.unacked_len(), 0, "fully acked");
        assert!(tx.echoes_received.iter().all(|&e| e > 0));
        // Both paths carried data.
        assert!(tx.data_sent.iter().all(|&d| d > 0), "{:?}", tx.data_sent);
    }
}
