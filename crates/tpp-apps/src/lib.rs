//! # tpp-apps — the paper's network tasks, refactored onto TPPs
//!
//! §2 of the paper demonstrates the TPP interface with three tasks, each
//! split into a trivial in-network program and an expressive end-host
//! component. This crate implements all three, plus the §3.2.3
//! concurrency demonstration:
//!
//! | Module | Paper section | In-network program | End-host logic |
//! |---|---|---|---|
//! | [`microburst`] | §2.1 | `PUSH [Queue:QueueSize]` | per-RTT queue time series + burst detector |
//! | [`rcpstar`] | §2.2 | 5 PUSHes (collect), CEXEC+STORE (update) | the full RCP control loop per flow |
//! | [`ndb`] | §2.3 | 4 PUSHes of forwarding metadata | trace reassembly + policy verification |
//! | [`cstore`] | §3.2.3 | CEXEC+PUSH / CEXEC+CSTORE | linearizable read-modify-write with retry |
//! | [`wireless`] | §2.3 | PUSH SNR + queue size | per-loss fade-vs-congestion attribution |
//! | [`bonding`] | §2.3 | 4 PUSHes (id, epoch, queue, util) | multi-NIC bonding: weighting, hysteresis, failover |
//!
//! Everything here talks to the network *exclusively* through TPPs — no
//! module reads simulator ground truth. The experiments in `tpp-bench`
//! compare what these apps infer against ground truth to validate the
//! interface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bonding;
pub mod cstore;
pub mod microburst;
pub mod ndb;
pub mod rcpstar;
pub mod wireless;

pub use bonding::{BondReceiver, BondSender, BondSenderConfig};
pub use cstore::{CounterTask, CounterWriteMode};
pub use microburst::{detect_bursts, Burst, MicroburstMonitor, QueueSample};
pub use ndb::{NdbHop, NdbProbeSender, PathPolicy, PathTrace, TraceCollector, Violation};
pub use rcpstar::{
    decode_rate_echo, rate_collect_probe, rate_probe_payload, RateEcho, RcpStarConfig,
    RcpStarSender,
};
pub use wireless::{classify_loss, DiagnosisConfig, HealthSample, LinkHealthMonitor, LossCause};
