//! # tpp-telemetry — structured tracing and metrics for the TPP pipeline
//!
//! The paper's premise is that dataplane visibility should be cheap and
//! programmable; the follow-up ("Millions of Little Minions", SIGCOMM
//! 2014) turns exactly this into a production visibility system. This
//! crate is the reproduction's own visibility layer: a zero-cost-when-
//! disabled event stream emitted by every stage of the `tpp-asic`
//! pipeline (parse → table lookup → TCPU → enqueue/drop → dequeue) and a
//! metrics registry `tpp-netsim` aggregates across switches on every
//! stats tick.
//!
//! Design:
//!
//! * [`TraceEvent`] — one typed record per pipeline stage transition,
//!   carrying switch id, packet sequence number, timestamps, queue depth
//!   and TCPU cycle accounting. The schema is documented field by field
//!   in DESIGN.md ("Observability").
//! * [`TraceSink`] — where events go. The dataplane calls
//!   [`TraceSink::record`] only when a sink is attached, so an untraced
//!   ASIC pays a single null-check per stage.
//! * [`RingBufferSink`] — the bounded default sink: keeps the most
//!   recent `capacity` events, counts what it sheds.
//! * [`SharedSink`] — a cheaply clonable handle letting one buffer
//!   collect events from many switches (shards record from worker
//!   threads, so this is an `Arc<Mutex<…>>`, and reads come back in a
//!   canonical `(t_ns, switch_id)` order).
//! * JSON-lines and CSV exporters ([`write_jsonl`], [`write_csv`]) —
//!   the formats `tpp-bench`'s `--trace out.jsonl` flags produce.
//! * [`MetricsRegistry`] — named counters and log₂-bucket histograms,
//!   merged across switches by `tpp-netsim::Simulator` on `tick`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod sink;

pub use event::{
    write_csv, write_jsonl, DropKind, LookupKind, Stage, TcpuOutcome, TraceEvent, TraceEventKind,
};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use sink::{RingBufferSink, SharedSink, TraceSink, VecSink};
