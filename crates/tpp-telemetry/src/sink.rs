//! Trace sinks: where pipeline events go.
//!
//! The dataplane holds an `Option<Box<dyn TraceSink>>` and emits only
//! when one is attached — the disabled path is a null check, which is
//! what lets tracing live inside `handle_frame` without taxing the
//! line-rate benchmarks.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::event::TraceEvent;

/// A consumer of [`TraceEvent`]s.
///
/// Implementations must be cheap: the dataplane calls [`record`] inline
/// from `handle_frame`. Anything expensive (serialization, IO) belongs in
/// an exporter run after the fact over a buffered sink.
///
/// [`record`]: TraceSink::record
pub trait TraceSink {
    /// Consume one event.
    fn record(&mut self, event: TraceEvent);
}

/// A bounded ring buffer of the most recent events.
///
/// When full, the oldest event is shed and counted in
/// [`RingBufferSink::shed`] — tracing must never grow without bound
/// inside a long simulation.
#[derive(Debug)]
pub struct RingBufferSink {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    shed: u64,
}

impl RingBufferSink {
    /// A ring buffer holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            events: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            capacity: capacity.max(1),
            shed: 0,
        }
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events shed because the buffer was full.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Drain all buffered events, oldest first.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.shed += 1;
        }
        self.events.push_back(event);
    }
}

/// An unbounded sink, for short unit-test runs where shedding would hide
/// the assertion target.
#[derive(Debug, Default)]
pub struct VecSink {
    /// The recorded events, oldest first.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for VecSink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// A clonable handle over a shared [`RingBufferSink`], letting one
/// buffer collect the event streams of many switches (and letting the
/// caller keep a handle to read events back out after the dataplane has
/// consumed the boxed sink).
///
/// The whole simulator is single-threaded by design, so this is
/// `Rc<RefCell<…>>`, not a lock.
#[derive(Debug, Clone)]
pub struct SharedSink(Rc<RefCell<RingBufferSink>>);

impl SharedSink {
    /// A shared ring buffer of `capacity` events.
    pub fn new(capacity: usize) -> Self {
        SharedSink(Rc::new(RefCell::new(RingBufferSink::new(capacity))))
    }

    /// Snapshot the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.0.borrow().events().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }

    /// Events shed because the buffer was full.
    pub fn shed(&self) -> u64 {
        self.0.borrow().shed()
    }

    /// Drain all buffered events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.0.borrow_mut().drain()
    }
}

impl TraceSink for SharedSink {
    fn record(&mut self, event: TraceEvent) {
        self.0.borrow_mut().record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEventKind;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            t_ns: seq,
            switch_id: 1,
            seq,
            kind: TraceEventKind::LookupMiss,
        }
    }

    #[test]
    fn ring_buffer_sheds_oldest() {
        let mut sink = RingBufferSink::new(3);
        for i in 0..5 {
            sink.record(ev(i));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.shed(), 2);
        let seqs: Vec<u64> = sink.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest shed first");
    }

    #[test]
    fn shared_sink_fans_in() {
        let shared = SharedSink::new(16);
        let mut a: Box<dyn TraceSink> = Box::new(shared.clone());
        let mut b: Box<dyn TraceSink> = Box::new(shared.clone());
        a.record(ev(1));
        b.record(ev(2));
        a.record(ev(3));
        assert_eq!(shared.len(), 3);
        let seqs: Vec<u64> = shared.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3], "arrival order preserved");
    }

    #[test]
    fn drain_empties() {
        let shared = SharedSink::new(4);
        let mut s = shared.clone();
        s.record(ev(9));
        assert_eq!(shared.drain().len(), 1);
        assert!(shared.is_empty());
    }
}
