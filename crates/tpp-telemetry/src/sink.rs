//! Trace sinks: where pipeline events go.
//!
//! The dataplane holds an `Option<Box<dyn TraceSink>>` and emits only
//! when one is attached — the disabled path is a null check, which is
//! what lets tracing live inside `handle_frame` without taxing the
//! line-rate benchmarks.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::event::TraceEvent;

/// A consumer of [`TraceEvent`]s.
///
/// Implementations must be cheap: the dataplane calls [`record`] inline
/// from `handle_frame`. Anything expensive (serialization, IO) belongs in
/// an exporter run after the fact over a buffered sink.
///
/// `Send` because switches (and the sinks inside them) are stepped from
/// the sharded simulator's worker threads.
///
/// [`record`]: TraceSink::record
pub trait TraceSink: Send {
    /// Consume one event.
    fn record(&mut self, event: TraceEvent);
}

/// A bounded ring buffer of the most recent events.
///
/// When full, the oldest event is shed and counted in
/// [`RingBufferSink::shed`] — tracing must never grow without bound
/// inside a long simulation.
#[derive(Debug)]
pub struct RingBufferSink {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    shed: u64,
}

impl RingBufferSink {
    /// A ring buffer holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            events: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            capacity: capacity.max(1),
            shed: 0,
        }
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events shed because the buffer was full.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Drain all buffered events, oldest first.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.shed += 1;
        }
        self.events.push_back(event);
    }
}

/// An unbounded sink, for short unit-test runs where shedding would hide
/// the assertion target.
#[derive(Debug, Default)]
pub struct VecSink {
    /// The recorded events, oldest first.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for VecSink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// A clonable handle over a shared [`RingBufferSink`], letting one
/// buffer collect the event streams of many switches (and letting the
/// caller keep a handle to read events back out after the dataplane has
/// consumed the boxed sink).
///
/// Shards step switches from worker threads, so the shared buffer sits
/// behind a `Mutex`. Events from different shards interleave in lock
/// acquisition order; [`SharedSink::events`] and [`SharedSink::drain`]
/// therefore re-establish the canonical order — a stable sort by
/// `(t_ns, switch_id)` — so readers see the same sequence regardless of
/// shard count or thread scheduling. Within one switch, events keep
/// their emission order (a switch's clock is monotone and lives on one
/// shard).
#[derive(Debug, Clone)]
pub struct SharedSink(Arc<Mutex<RingBufferSink>>);

impl SharedSink {
    /// A shared ring buffer of `capacity` events.
    pub fn new(capacity: usize) -> Self {
        SharedSink(Arc::new(Mutex::new(RingBufferSink::new(capacity))))
    }

    /// Snapshot the buffered events in canonical order: stable-sorted by
    /// `(t_ns, switch_id)`, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = self
            .0
            .lock()
            .expect("sink lock poisoned")
            .events()
            .cloned()
            .collect();
        events.sort_by_key(|e| (e.t_ns, e.switch_id));
        events
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.0.lock().expect("sink lock poisoned").len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.0.lock().expect("sink lock poisoned").is_empty()
    }

    /// Events shed because the buffer was full.
    pub fn shed(&self) -> u64 {
        self.0.lock().expect("sink lock poisoned").shed()
    }

    /// Drain all buffered events, in the same canonical order as
    /// [`SharedSink::events`].
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut events = self.0.lock().expect("sink lock poisoned").drain();
        events.sort_by_key(|e| (e.t_ns, e.switch_id));
        events
    }
}

impl TraceSink for SharedSink {
    fn record(&mut self, event: TraceEvent) {
        self.0.lock().expect("sink lock poisoned").record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEventKind;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            t_ns: seq,
            switch_id: 1,
            seq,
            kind: TraceEventKind::LookupMiss,
        }
    }

    #[test]
    fn ring_buffer_sheds_oldest() {
        let mut sink = RingBufferSink::new(3);
        for i in 0..5 {
            sink.record(ev(i));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.shed(), 2);
        let seqs: Vec<u64> = sink.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest shed first");
    }

    #[test]
    fn shared_sink_fans_in() {
        let shared = SharedSink::new(16);
        let mut a: Box<dyn TraceSink> = Box::new(shared.clone());
        let mut b: Box<dyn TraceSink> = Box::new(shared.clone());
        a.record(ev(1));
        b.record(ev(2));
        a.record(ev(3));
        assert_eq!(shared.len(), 3);
        let seqs: Vec<u64> = shared.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3], "arrival order preserved");
    }

    #[test]
    fn events_sort_canonically_across_switches() {
        let shared = SharedSink::new(16);
        let mut s = shared.clone();
        // Two switches' streams interleaved out of id order, as a
        // multi-shard run would record them.
        s.record(TraceEvent {
            t_ns: 5,
            switch_id: 2,
            seq: 0,
            kind: TraceEventKind::LookupMiss,
        });
        s.record(TraceEvent {
            t_ns: 5,
            switch_id: 1,
            seq: 0,
            kind: TraceEventKind::LookupMiss,
        });
        s.record(TraceEvent {
            t_ns: 4,
            switch_id: 2,
            seq: 1,
            kind: TraceEventKind::LookupMiss,
        });
        let order: Vec<(u64, u32)> = shared
            .events()
            .iter()
            .map(|e| (e.t_ns, e.switch_id))
            .collect();
        assert_eq!(order, vec![(4, 2), (5, 1), (5, 2)]);
    }

    #[test]
    fn drain_empties() {
        let shared = SharedSink::new(4);
        let mut s = shared.clone();
        s.record(ev(9));
        assert_eq!(shared.drain().len(), 1);
        assert!(shared.is_empty());
    }
}
