//! The trace event schema: one typed record per pipeline stage, plus
//! JSON-lines and CSV serialization.
//!
//! The schema mirrors Figure 3's pipeline. A packet walking one switch
//! produces, in order: `Parse` → (`EdgeFilter`)? → `Lookup` → (`TcpuExec`)?
//! → `Enqueue` | `Drop`, and later a `Dequeue` when the scheduler
//! transmits it. End-host decoders add `HostHopRecord` events for each
//! hop of an echoed TPP, so network- and host-side telemetry share one
//! stream (the way the paper's ndb consumes both).

use std::io::{self, Write};

/// A pipeline stage, used to label events and metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Header parser.
    Parse,
    /// §4 ingress edge filter.
    EdgeFilter,
    /// L2 / L3 / TCAM forwarding lookup.
    Lookup,
    /// TCPU execution.
    Tcpu,
    /// Egress enqueue (MMU admission).
    Enqueue,
    /// Scheduler dequeue / transmit.
    Dequeue,
    /// End-host decode of an echoed TPP.
    Host,
    /// Injected fault (chaos runs): link flaps, reboots, corruption.
    Fault,
}

impl Stage {
    /// Stable lowercase name used in serialized output and metric keys.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::EdgeFilter => "edge_filter",
            Stage::Lookup => "lookup",
            Stage::Tcpu => "tcpu",
            Stage::Enqueue => "enqueue",
            Stage::Dequeue => "dequeue",
            Stage::Host => "host",
            Stage::Fault => "fault",
        }
    }
}

/// Which forwarding table produced the egress decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupKind {
    /// TCAM flow entry (highest precedence).
    Tcam,
    /// L3 longest-prefix match.
    L3,
    /// L2 exact MAC match.
    L2,
}

impl LookupKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            LookupKind::Tcam => "tcam",
            LookupKind::L3 => "l3",
            LookupKind::L2 => "l2",
        }
    }
}

/// Why a frame was dropped — the telemetry mirror of the dataplane's
/// `DropReason` (kept separate so this crate stays at the bottom of the
/// dependency stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropKind {
    /// No table produced an egress port.
    NoRoute,
    /// Drop-tail egress queue overflow.
    QueueFull,
    /// A TCAM entry's action was `Drop`.
    FlowDrop,
    /// The §4 edge policy dropped a TPP from an untrusted port.
    EdgeFiltered,
    /// The frame failed to parse.
    ParseError,
}

impl DropKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            DropKind::NoRoute => "no_route",
            DropKind::QueueFull => "queue_full",
            DropKind::FlowDrop => "flow_drop",
            DropKind::EdgeFiltered => "edge_filtered",
            DropKind::ParseError => "parse_error",
        }
    }
}

/// How a TCPU execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpuOutcome {
    /// The whole program ran.
    Completed,
    /// Execution stopped early; the code names the halt cause
    /// (`cexec_failed`, `mmu_fault`, `packet_memory`, `bad_instruction`,
    /// `budget_exceeded`).
    Halted(&'static str),
}

impl TcpuOutcome {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            TcpuOutcome::Completed => "completed",
            TcpuOutcome::Halted(code) => code,
        }
    }
}

/// One pipeline stage transition.
///
/// `seq` is the emitting switch's `packets_processed` counter at emit
/// time, so all events of one packet's walk through one switch share a
/// sequence number (`Dequeue` events carry the sequence current at
/// transmit time instead — the scheduler does not know which arrival it
/// is serving, exactly like real egress pipelines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Emission time, ns (switch-local wall clock).
    pub t_ns: u64,
    /// `Switch:SwitchID` of the emitting switch (0 for host events).
    pub switch_id: u32,
    /// Packet sequence number at the emitting switch.
    pub seq: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The per-stage payload of a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Header parser verdict.
    Parse {
        /// Ingress port.
        in_port: u16,
        /// Frame length in bytes.
        len: u32,
        /// The frame carries a TPP section.
        is_tpp: bool,
        /// The frame parsed as valid Ethernet.
        ok: bool,
    },
    /// The §4 ingress edge filter acted on a TPP.
    EdgeFilter {
        /// Ingress port.
        in_port: u16,
        /// `"drop"` or `"unwrap"`.
        action: &'static str,
    },
    /// A forwarding table produced an egress decision.
    Lookup {
        /// The winning table.
        table: LookupKind,
        /// Chosen egress port.
        out_port: u16,
        /// Chosen egress queue.
        queue: u8,
        /// Matched TCAM entry id (0 off the TCAM path).
        entry_id: u32,
    },
    /// No table matched.
    LookupMiss,
    /// The TCPU ran a TPP (per-instruction cycle accounting from
    /// `tpp-asic::tcpu`).
    TcpuExec {
        /// Egress port the TPP saw.
        out_port: u16,
        /// Instructions that completed.
        instructions: u32,
        /// Cycles consumed (pipeline latency + 1/instruction).
        cycles: u32,
        /// The configured per-packet cycle budget.
        budget: u32,
        /// How execution ended.
        outcome: TcpuOutcome,
        /// Hop counter after this execution.
        hop: u8,
        /// Whether any instruction wrote switch SRAM.
        wrote_switch: bool,
    },
    /// A frame was admitted to an egress queue.
    Enqueue {
        /// Egress port.
        port: u16,
        /// Egress queue.
        queue: u8,
        /// Queue occupancy in bytes *before* this frame was added —
        /// the value a TPP's `PUSH [Queue:QueueSize]` read this walk.
        depth_bytes: u64,
        /// Frame length.
        len: u32,
        /// The frame got an ECN mark at this enqueue.
        ecn_marked: bool,
    },
    /// The pipeline dropped the frame.
    Drop {
        /// Why.
        reason: DropKind,
        /// Egress port, when the drop happened after a lookup.
        port: Option<u16>,
    },
    /// The scheduler transmitted a frame.
    Dequeue {
        /// Egress port.
        port: u16,
        /// Queue served.
        queue: u8,
        /// Frame length.
        len: u32,
        /// Occupancy remaining in that queue after the dequeue.
        depth_bytes: u64,
    },
    /// An end-host decoded one hop's record out of an echoed TPP.
    HostHopRecord {
        /// 0-based hop index along the path.
        hop: u32,
        /// The words the program recorded at that hop.
        words: Vec<u32>,
    },
    /// An injected fault took a link direction down. The envelope's
    /// `switch_id` names the transmitting switch (0 for host endpoints).
    LinkDown {
        /// Transmitting port of the failed direction.
        port: u16,
    },
    /// An injected fault restored a link direction.
    LinkUp {
        /// Transmitting port of the restored direction.
        port: u16,
    },
    /// A switch lost all volatile state and came back with a new boot
    /// epoch (the envelope's `switch_id` names the switch).
    SwitchReboot {
        /// `Switch:BootEpoch` after the reboot.
        epoch: u32,
    },
    /// A fault flipped one bit inside a frame's TPP section in flight.
    CorruptionInjected {
        /// Transmitting port of the corrupted direction.
        port: u16,
        /// Byte offset of the flip within the frame.
        byte: u32,
        /// Bit index (0..8) flipped within that byte.
        bit: u8,
    },
    /// An end-host probe manager re-sent an unanswered probe.
    ProbeRetry {
        /// The probe's nonce.
        nonce: u64,
        /// 1-based retry attempt number.
        attempt: u32,
    },
    /// An end-host probe exhausted its retry budget.
    ProbeTimeout {
        /// The probe's nonce.
        nonce: u64,
        /// Retries that were attempted before giving up.
        retries: u32,
    },
    /// An end-host observed a switch boot epoch different from its cached
    /// value (the envelope's `switch_id` names the switch): cached state
    /// derived from that switch is stale.
    EpochMismatch {
        /// The epoch the host had cached.
        expected: u32,
        /// The epoch the probe reported.
        observed: u32,
    },
}

impl TraceEventKind {
    /// The pipeline stage this event belongs to.
    pub fn stage(&self) -> Stage {
        match self {
            TraceEventKind::Parse { .. } => Stage::Parse,
            TraceEventKind::EdgeFilter { .. } => Stage::EdgeFilter,
            TraceEventKind::Lookup { .. } | TraceEventKind::LookupMiss => Stage::Lookup,
            TraceEventKind::TcpuExec { .. } => Stage::Tcpu,
            TraceEventKind::Enqueue { .. } => Stage::Enqueue,
            TraceEventKind::Drop { .. } => Stage::Enqueue,
            TraceEventKind::Dequeue { .. } => Stage::Dequeue,
            TraceEventKind::HostHopRecord { .. } => Stage::Host,
            TraceEventKind::LinkDown { .. }
            | TraceEventKind::LinkUp { .. }
            | TraceEventKind::SwitchReboot { .. }
            | TraceEventKind::CorruptionInjected { .. } => Stage::Fault,
            TraceEventKind::ProbeRetry { .. }
            | TraceEventKind::ProbeTimeout { .. }
            | TraceEventKind::EpochMismatch { .. } => Stage::Host,
        }
    }

    /// Stable event name used in serialized output.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::Parse { .. } => "parse",
            TraceEventKind::EdgeFilter { .. } => "edge_filter",
            TraceEventKind::Lookup { .. } => "lookup_hit",
            TraceEventKind::LookupMiss => "lookup_miss",
            TraceEventKind::TcpuExec { .. } => "tcpu_exec",
            TraceEventKind::Enqueue { .. } => "enqueue",
            TraceEventKind::Drop { .. } => "drop",
            TraceEventKind::Dequeue { .. } => "dequeue",
            TraceEventKind::HostHopRecord { .. } => "host_hop",
            TraceEventKind::LinkDown { .. } => "link_down",
            TraceEventKind::LinkUp { .. } => "link_up",
            TraceEventKind::SwitchReboot { .. } => "switch_reboot",
            TraceEventKind::CorruptionInjected { .. } => "corruption_injected",
            TraceEventKind::ProbeRetry { .. } => "probe_retry",
            TraceEventKind::ProbeTimeout { .. } => "probe_timeout",
            TraceEventKind::EpochMismatch { .. } => "epoch_mismatch",
        }
    }
}

impl TraceEvent {
    /// Serialize as one JSON object (no trailing newline). The field set
    /// varies by event kind; `event`, `t_ns`, `switch` and `seq` are
    /// always present.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str(&format!(
            "{{\"event\":\"{}\",\"stage\":\"{}\",\"t_ns\":{},\"switch\":{},\"seq\":{}",
            self.kind.name(),
            self.kind.stage().name(),
            self.t_ns,
            self.switch_id,
            self.seq
        ));
        match &self.kind {
            TraceEventKind::Parse {
                in_port,
                len,
                is_tpp,
                ok,
            } => {
                s.push_str(&format!(
                    ",\"in_port\":{in_port},\"len\":{len},\"is_tpp\":{is_tpp},\"ok\":{ok}"
                ));
            }
            TraceEventKind::EdgeFilter { in_port, action } => {
                s.push_str(&format!(",\"in_port\":{in_port},\"action\":\"{action}\""));
            }
            TraceEventKind::Lookup {
                table,
                out_port,
                queue,
                entry_id,
            } => {
                s.push_str(&format!(
                    ",\"table\":\"{}\",\"out_port\":{out_port},\"queue\":{queue},\"entry_id\":{entry_id}",
                    table.name()
                ));
            }
            TraceEventKind::LookupMiss => {}
            TraceEventKind::TcpuExec {
                out_port,
                instructions,
                cycles,
                budget,
                outcome,
                hop,
                wrote_switch,
            } => {
                s.push_str(&format!(
                    ",\"out_port\":{out_port},\"instructions\":{instructions},\"cycles\":{cycles},\
                     \"budget\":{budget},\"outcome\":\"{}\",\"hop\":{hop},\"wrote_switch\":{wrote_switch}",
                    outcome.name()
                ));
            }
            TraceEventKind::Enqueue {
                port,
                queue,
                depth_bytes,
                len,
                ecn_marked,
            } => {
                s.push_str(&format!(
                    ",\"port\":{port},\"queue\":{queue},\"depth_bytes\":{depth_bytes},\
                     \"len\":{len},\"ecn_marked\":{ecn_marked}"
                ));
            }
            TraceEventKind::Drop { reason, port } => {
                s.push_str(&format!(",\"reason\":\"{}\"", reason.name()));
                if let Some(p) = port {
                    s.push_str(&format!(",\"port\":{p}"));
                }
            }
            TraceEventKind::Dequeue {
                port,
                queue,
                len,
                depth_bytes,
            } => {
                s.push_str(&format!(
                    ",\"port\":{port},\"queue\":{queue},\"len\":{len},\"depth_bytes\":{depth_bytes}"
                ));
            }
            TraceEventKind::HostHopRecord { hop, words } => {
                let joined: Vec<String> = words.iter().map(u32::to_string).collect();
                s.push_str(&format!(",\"hop\":{hop},\"words\":[{}]", joined.join(",")));
            }
            TraceEventKind::LinkDown { port } | TraceEventKind::LinkUp { port } => {
                s.push_str(&format!(",\"port\":{port}"));
            }
            TraceEventKind::SwitchReboot { epoch } => {
                s.push_str(&format!(",\"epoch\":{epoch}"));
            }
            TraceEventKind::CorruptionInjected { port, byte, bit } => {
                s.push_str(&format!(",\"port\":{port},\"byte\":{byte},\"bit\":{bit}"));
            }
            TraceEventKind::ProbeRetry { nonce, attempt } => {
                s.push_str(&format!(",\"nonce\":{nonce},\"attempt\":{attempt}"));
            }
            TraceEventKind::ProbeTimeout { nonce, retries } => {
                s.push_str(&format!(",\"nonce\":{nonce},\"retries\":{retries}"));
            }
            TraceEventKind::EpochMismatch { expected, observed } => {
                s.push_str(&format!(",\"expected\":{expected},\"observed\":{observed}"));
            }
        }
        s.push('}');
        s
    }

    /// Serialize as one CSV row of the fixed column set written by
    /// [`write_csv`]. Fields a kind does not define are left empty.
    pub fn to_csv_row(&self) -> String {
        // Columns: event,stage,t_ns,switch,seq,port,queue,len,depth_bytes,detail
        let (port, queue, len, depth, detail): (
            Option<u16>,
            Option<u8>,
            Option<u32>,
            Option<u64>,
            String,
        ) = match &self.kind {
            TraceEventKind::Parse {
                in_port,
                len,
                is_tpp,
                ok,
            } => (
                Some(*in_port),
                None,
                Some(*len),
                None,
                format!("is_tpp={is_tpp} ok={ok}"),
            ),
            TraceEventKind::EdgeFilter { in_port, action } => {
                (Some(*in_port), None, None, None, (*action).to_string())
            }
            TraceEventKind::Lookup {
                table,
                out_port,
                queue,
                entry_id,
            } => (
                Some(*out_port),
                Some(*queue),
                None,
                None,
                format!("{} entry={entry_id}", table.name()),
            ),
            TraceEventKind::LookupMiss => (None, None, None, None, String::new()),
            TraceEventKind::TcpuExec {
                out_port,
                instructions,
                cycles,
                budget,
                outcome,
                hop,
                ..
            } => (
                Some(*out_port),
                None,
                None,
                None,
                format!(
                    "insns={instructions} cycles={cycles}/{budget} {} hop={hop}",
                    outcome.name()
                ),
            ),
            TraceEventKind::Enqueue {
                port,
                queue,
                depth_bytes,
                len,
                ecn_marked,
            } => (
                Some(*port),
                Some(*queue),
                Some(*len),
                Some(*depth_bytes),
                format!("ecn={ecn_marked}"),
            ),
            TraceEventKind::Drop { reason, port } => {
                (*port, None, None, None, reason.name().to_string())
            }
            TraceEventKind::Dequeue {
                port,
                queue,
                len,
                depth_bytes,
            } => (
                Some(*port),
                Some(*queue),
                Some(*len),
                Some(*depth_bytes),
                String::new(),
            ),
            TraceEventKind::HostHopRecord { hop, words } => {
                let joined: Vec<String> = words.iter().map(u32::to_string).collect();
                (
                    None,
                    None,
                    None,
                    None,
                    format!("hop={hop} words={}", joined.join("|")),
                )
            }
            TraceEventKind::LinkDown { port } | TraceEventKind::LinkUp { port } => {
                (Some(*port), None, None, None, String::new())
            }
            TraceEventKind::SwitchReboot { epoch } => {
                (None, None, None, None, format!("epoch={epoch}"))
            }
            TraceEventKind::CorruptionInjected { port, byte, bit } => (
                Some(*port),
                None,
                None,
                None,
                format!("byte={byte} bit={bit}"),
            ),
            TraceEventKind::ProbeRetry { nonce, attempt } => (
                None,
                None,
                None,
                None,
                format!("nonce={nonce} attempt={attempt}"),
            ),
            TraceEventKind::ProbeTimeout { nonce, retries } => (
                None,
                None,
                None,
                None,
                format!("nonce={nonce} retries={retries}"),
            ),
            TraceEventKind::EpochMismatch { expected, observed } => (
                None,
                None,
                None,
                None,
                format!("expected={expected} observed={observed}"),
            ),
        };
        let opt = |x: Option<u64>| x.map(|v| v.to_string()).unwrap_or_default();
        format!(
            "{},{},{},{},{},{},{},{},{},{}",
            self.kind.name(),
            self.kind.stage().name(),
            self.t_ns,
            self.switch_id,
            self.seq,
            opt(port.map(u64::from)),
            opt(queue.map(u64::from)),
            opt(len.map(u64::from)),
            opt(depth),
            detail
        )
    }
}

/// Write events as JSON lines (one object per line).
pub fn write_jsonl<'a, W: Write>(
    out: &mut W,
    events: impl IntoIterator<Item = &'a TraceEvent>,
) -> io::Result<()> {
    for ev in events {
        writeln!(out, "{}", ev.to_json())?;
    }
    Ok(())
}

/// Write events as CSV with a header row.
pub fn write_csv<'a, W: Write>(
    out: &mut W,
    events: impl IntoIterator<Item = &'a TraceEvent>,
) -> io::Result<()> {
    writeln!(
        out,
        "event,stage,t_ns,switch,seq,port,queue,len,depth_bytes,detail"
    )?;
    for ev in events {
        writeln!(out, "{}", ev.to_csv_row())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            t_ns: 1000,
            switch_id: 0xA1,
            seq: 7,
            kind,
        }
    }

    #[test]
    fn json_has_common_envelope() {
        let e = ev(TraceEventKind::Enqueue {
            port: 1,
            queue: 0,
            depth_bytes: 78,
            len: 64,
            ecn_marked: false,
        });
        let j = e.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for needle in [
            "\"event\":\"enqueue\"",
            "\"stage\":\"enqueue\"",
            "\"t_ns\":1000",
            "\"switch\":161",
            "\"seq\":7",
            "\"depth_bytes\":78",
            "\"ecn_marked\":false",
        ] {
            assert!(j.contains(needle), "{j} missing {needle}");
        }
    }

    #[test]
    fn json_tcpu_exec_carries_cycle_accounting() {
        let e = ev(TraceEventKind::TcpuExec {
            out_port: 2,
            instructions: 5,
            cycles: 9,
            budget: 300,
            outcome: TcpuOutcome::Completed,
            hop: 1,
            wrote_switch: false,
        });
        let j = e.to_json();
        assert!(j.contains("\"cycles\":9"));
        assert!(j.contains("\"budget\":300"));
        assert!(j.contains("\"outcome\":\"completed\""));
    }

    #[test]
    fn jsonl_and_csv_roundtrip_line_counts() {
        let events = vec![
            ev(TraceEventKind::LookupMiss),
            ev(TraceEventKind::Drop {
                reason: DropKind::NoRoute,
                port: None,
            }),
            ev(TraceEventKind::HostHopRecord {
                hop: 2,
                words: vec![1, 2, 3],
            }),
        ];
        let mut jsonl = Vec::new();
        write_jsonl(&mut jsonl, &events).unwrap();
        assert_eq!(String::from_utf8(jsonl).unwrap().lines().count(), 3);
        let mut csv = Vec::new();
        write_csv(&mut csv, &events).unwrap();
        let csv = String::from_utf8(csv).unwrap();
        assert_eq!(csv.lines().count(), 4, "header + 3 rows");
        assert!(csv.lines().nth(3).unwrap().contains("words=1|2|3"));
    }

    #[test]
    fn fault_events_serialize() {
        let e = ev(TraceEventKind::LinkDown { port: 3 });
        assert_eq!(e.kind.stage(), Stage::Fault);
        assert!(e.to_json().contains("\"event\":\"link_down\""));
        assert!(e.to_json().contains("\"port\":3"));

        let e = ev(TraceEventKind::SwitchReboot { epoch: 2 });
        assert!(e.to_json().contains("\"epoch\":2"));
        assert!(e.to_csv_row().contains("epoch=2"));

        let e = ev(TraceEventKind::CorruptionInjected {
            port: 1,
            byte: 20,
            bit: 5,
        });
        assert!(e.to_json().contains("\"byte\":20"));

        let e = ev(TraceEventKind::ProbeRetry {
            nonce: 42,
            attempt: 1,
        });
        assert_eq!(e.kind.stage(), Stage::Host);
        assert!(e.to_json().contains("\"nonce\":42"));

        let e = ev(TraceEventKind::ProbeTimeout {
            nonce: 42,
            retries: 3,
        });
        assert!(e.to_csv_row().contains("retries=3"));

        let e = ev(TraceEventKind::EpochMismatch {
            expected: 0,
            observed: 1,
        });
        assert!(e.to_json().contains("\"observed\":1"));
    }

    #[test]
    fn stage_assignment() {
        assert_eq!(TraceEventKind::LookupMiss.stage(), Stage::Lookup);
        assert_eq!(
            TraceEventKind::Drop {
                reason: DropKind::QueueFull,
                port: Some(1)
            }
            .stage(),
            Stage::Enqueue
        );
    }
}
