//! Named counters and log₂-bucket histograms, aggregated across switches.
//!
//! `tpp-asic` exports its registers into a [`MetricsRegistry`] under
//! stable dotted names (`switch.packets_processed`, `port.tx_bytes`,
//! `queue.depth_bytes` …); `tpp-netsim::Simulator` rebuilds one registry
//! over all switches on every stats tick, so the ad-hoc register structs
//! stay the (fast, faithful) backing store and the registry is the
//! uniform exported *view* — the shape a production system would scrape.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A power-of-two bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples in `[2^(i-1), 2^i)` (bucket 0 counts
/// zeros and ones). 65 buckets cover the whole `u64` range; sum, count
/// and max ride along so averages and tails survive aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize; // 0 for 0 and 1
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest upper bound `2^i` such that at least `q` (0..=1) of the
    /// samples fall below it — a coarse quantile for tail inspection.
    ///
    /// Returns 0 (not a bucket bound) for an empty histogram, and the
    /// first non-empty bucket's bound for `q == 0.0`. Prefer
    /// [`Histogram::quantile`] when the up-to-2× bucket rounding
    /// matters.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // `q == 0.0` still targets the first sample; without the max the
        // target would be rank 0, satisfied by bucket 0 even when it is
        // empty (returning the bogus bound 1 for a histogram that holds
        // no small samples at all).
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen >= target {
                return if i >= 64 { u64::MAX } else { 1u64 << i };
            }
        }
        u64::MAX
    }

    /// HDR-style quantile: locate the bucket holding the `q`-th sample,
    /// then linearly interpolate within the bucket's `[2^(i-1), 2^i)`
    /// range, assuming samples spread uniformly inside it. Halves the
    /// worst case from "up to 2× high" (the bucket bound) to the
    /// sub-bucket resolution, and is exact for single-valued buckets
    /// because the estimate is clamped to the observed maximum.
    ///
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let hi = if i == 0 {
                    2
                } else if i >= 64 {
                    u64::MAX
                } else {
                    1u64 << i
                };
                let rank = (target - seen) as f64; // 1..=n within the bucket
                let frac = rank / n as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return (est.round() as u64).min(self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Median ([`Histogram::quantile`] at 0.5).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile ([`Histogram::quantile`] at 0.99).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one (saturating, like the
    /// registry's counters).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// A registry of named counters and histograms.
///
/// Names are dotted paths (`stage.metric`); aggregation across switches
/// is a plain merge (counters add, histograms merge), which is correct
/// because every exported value is a monotonic count or a sample stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a counter, creating it at zero first if needed.
    /// Counters saturate at `u64::MAX` instead of wrapping — an
    /// aggregated view must never report a small value because one
    /// input overflowed.
    pub fn add(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                self.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Set a counter to an absolute value (for gauge-like registers).
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Read a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record a histogram sample.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Merge a pre-aggregated histogram into the named entry (created
    /// empty first if needed) — the export path for subsystems that
    /// maintain their own `Histogram` instances.
    pub fn merge_histogram(&mut self, name: &str, hist: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(hist);
    }

    /// Read a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merge another registry into this one (counters add saturating,
    /// histograms merge). Keys present in only one registry survive the
    /// merge untouched.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.counters {
            let v = self.counters.entry(name.clone()).or_insert(0);
            *v = v.saturating_add(*value);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// Reset everything to empty.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }

    /// An owned point-in-time copy, stamped with the capture time.
    pub fn snapshot(&self, t_ns: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            t_ns,
            registry: self.clone(),
        }
    }

    /// Render as one JSON object: `{"counters":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{name}\":{value}");
        }
        s.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{name}\":{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.3}}}",
                h.count(),
                h.sum(),
                h.max(),
                h.mean()
            );
        }
        s.push_str("}}");
        s
    }
}

/// A point-in-time copy of a registry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Capture time, ns.
    pub t_ns: u64,
    /// The captured values.
    pub registry: MetricsRegistry,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 201.2).abs() < 1e-9);
        // 4 of 5 samples are <= 3 < 4: the 0.8 quantile bound is small.
        assert!(h.quantile_bound(0.8) <= 4);
        assert_eq!(h.quantile_bound(1.0), 1024, "1000 < 2^10");
    }

    #[test]
    fn quantile_empty_and_edge_cases() {
        let h = Histogram::default();
        assert_eq!(h.quantile_bound(0.5), 0, "empty histogram reports 0");
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);

        // q = 0.0 must target the first sample, not fall through to
        // bucket 0's bound when bucket 0 is empty.
        let mut h = Histogram::default();
        h.observe(1000);
        assert_eq!(h.quantile_bound(0.0), 1024);
        assert_eq!(h.quantile(0.0), h.quantile(1.0));
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        // 256 distinct samples filling bucket [256, 512): the true
        // median is 383.5; the bucket bound alone would report 512
        // (~1.33× high, and up to 2× in the worst case).
        let mut h = Histogram::default();
        for v in 256..512 {
            h.observe(v);
        }
        let p50 = h.quantile(0.5) as i64;
        assert!((p50 - 384).abs() <= 2, "interpolated p50 {p50} != ~384");
        let p99 = h.quantile(0.99) as i64;
        assert!((p99 - 509).abs() <= 4, "interpolated p99 {p99} != ~509");
        assert_eq!(h.quantile(1.0), 511, "p100 clamps to the true max");
        assert_eq!(h.p50(), h.quantile(0.5));
        assert_eq!(h.p99(), h.quantile(0.99));
    }

    #[test]
    fn quantile_single_valued_bucket_is_exact() {
        let mut h = Histogram::default();
        for _ in 0..100 {
            h.observe(300);
        }
        // Interpolation alone would report up to 512; the max clamp
        // makes the degenerate single-value case exact.
        assert_eq!(h.p50(), 300);
        assert_eq!(h.p99(), 300);
        assert_eq!(h.max(), 300);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut r = MetricsRegistry::new();
        r.add("c", u64::MAX - 1);
        r.add("c", 5);
        assert_eq!(r.counter("c"), u64::MAX, "add saturates");

        let mut a = MetricsRegistry::new();
        a.add("c", u64::MAX - 1);
        let mut b = MetricsRegistry::new();
        b.add("c", u64::MAX - 1);
        a.merge(&b);
        assert_eq!(a.counter("c"), u64::MAX, "merge saturates");
    }

    #[test]
    fn merge_preserves_disjoint_keys() {
        let mut a = MetricsRegistry::new();
        a.add("only.in.a", 1);
        a.observe("hist.only.a", 10);
        let mut b = MetricsRegistry::new();
        b.add("only.in.b", 2);
        b.observe("hist.only.b", 20);

        a.merge(&b);
        assert_eq!(a.counter("only.in.a"), 1);
        assert_eq!(a.counter("only.in.b"), 2);
        assert_eq!(a.histogram("hist.only.a").unwrap().count(), 1);
        assert_eq!(a.histogram("hist.only.b").unwrap().count(), 1);
        // And the source registry is untouched.
        assert_eq!(b.counter("only.in.a"), 0);
        assert_eq!(b.counter("only.in.b"), 2);
    }

    #[test]
    fn registry_counters_and_merge() {
        let mut a = MetricsRegistry::new();
        a.add("switch.packets_processed", 10);
        a.add("switch.packets_processed", 5);
        a.observe("queue.depth_bytes", 100);

        let mut b = MetricsRegistry::new();
        b.add("switch.packets_processed", 7);
        b.add("switch.tpps_executed", 3);
        b.observe("queue.depth_bytes", 300);

        a.merge(&b);
        assert_eq!(a.counter("switch.packets_processed"), 22);
        assert_eq!(a.counter("switch.tpps_executed"), 3);
        assert_eq!(a.counter("absent"), 0);
        let h = a.histogram("queue.depth_bytes").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 400);
    }

    #[test]
    fn snapshot_is_independent() {
        let mut r = MetricsRegistry::new();
        r.add("x", 1);
        let snap = r.snapshot(500);
        r.add("x", 1);
        assert_eq!(snap.registry.counter("x"), 1);
        assert_eq!(r.counter("x"), 2);
        assert_eq!(snap.t_ns, 500);
    }

    #[test]
    fn json_rendering() {
        let mut r = MetricsRegistry::new();
        r.add("a.b", 2);
        r.observe("h", 8);
        let j = r.to_json();
        assert!(j.contains("\"a.b\":2"));
        assert!(j.contains("\"count\":1"));
        assert!(j.contains("\"sum\":8"));
    }
}
