//! Named counters and log₂-bucket histograms, aggregated across switches.
//!
//! `tpp-asic` exports its registers into a [`MetricsRegistry`] under
//! stable dotted names (`switch.packets_processed`, `port.tx_bytes`,
//! `queue.depth_bytes` …); `tpp-netsim::Simulator` rebuilds one registry
//! over all switches on every stats tick, so the ad-hoc register structs
//! stay the (fast, faithful) backing store and the registry is the
//! uniform exported *view* — the shape a production system would scrape.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A power-of-two bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples in `[2^(i-1), 2^i)` (bucket 0 counts
/// zeros and ones). 65 buckets cover the whole `u64` range; sum, count
/// and max ride along so averages and tails survive aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize; // 0 for 0 and 1
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest upper bound `2^i` such that at least `q` (0..=1) of the
    /// samples fall below it — a coarse quantile for tail inspection.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i >= 64 { u64::MAX } else { 1u64 << i };
            }
        }
        u64::MAX
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// A registry of named counters and histograms.
///
/// Names are dotted paths (`stage.metric`); aggregation across switches
/// is a plain merge (counters add, histograms merge), which is correct
/// because every exported value is a monotonic count or a sample stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a counter, creating it at zero first if needed.
    pub fn add(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                self.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Set a counter to an absolute value (for gauge-like registers).
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Read a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record a histogram sample.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Read a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merge another registry into this one (counters add, histograms
    /// merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// Reset everything to empty.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }

    /// An owned point-in-time copy, stamped with the capture time.
    pub fn snapshot(&self, t_ns: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            t_ns,
            registry: self.clone(),
        }
    }

    /// Render as one JSON object: `{"counters":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{name}\":{value}");
        }
        s.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{name}\":{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.3}}}",
                h.count(),
                h.sum(),
                h.max(),
                h.mean()
            );
        }
        s.push_str("}}");
        s
    }
}

/// A point-in-time copy of a registry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Capture time, ns.
    pub t_ns: u64,
    /// The captured values.
    pub registry: MetricsRegistry,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 201.2).abs() < 1e-9);
        // 4 of 5 samples are <= 3 < 4: the 0.8 quantile bound is small.
        assert!(h.quantile_bound(0.8) <= 4);
        assert_eq!(h.quantile_bound(1.0), 1024, "1000 < 2^10");
    }

    #[test]
    fn registry_counters_and_merge() {
        let mut a = MetricsRegistry::new();
        a.add("switch.packets_processed", 10);
        a.add("switch.packets_processed", 5);
        a.observe("queue.depth_bytes", 100);

        let mut b = MetricsRegistry::new();
        b.add("switch.packets_processed", 7);
        b.add("switch.tpps_executed", 3);
        b.observe("queue.depth_bytes", 300);

        a.merge(&b);
        assert_eq!(a.counter("switch.packets_processed"), 22);
        assert_eq!(a.counter("switch.tpps_executed"), 3);
        assert_eq!(a.counter("absent"), 0);
        let h = a.histogram("queue.depth_bytes").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 400);
    }

    #[test]
    fn snapshot_is_independent() {
        let mut r = MetricsRegistry::new();
        r.add("x", 1);
        let snap = r.snapshot(500);
        r.add("x", 1);
        assert_eq!(snap.registry.counter("x"), 1);
        assert_eq!(r.counter("x"), 2);
        assert_eq!(snap.t_ns, 500);
    }

    #[test]
    fn json_rendering() {
        let mut r = MetricsRegistry::new();
        r.add("a.b", 2);
        r.observe("h", 8);
        let j = r.to_json();
        assert!(j.contains("\"a.b\":2"));
        assert!(j.contains("\"count\":1"));
        assert!(j.contains("\"sum\":8"));
    }
}
