//! Scratch-SRAM partitioning between concurrent network tasks.
//!
//! A first-fit free-list allocator over the two writable namespaces
//! (global SRAM at `0x8000+`, per-link SRAM at `0x4000+`). Allocations
//! are per *task name*; releasing a task returns all its ranges. The
//! allocator never hands out overlapping words — the isolation guarantee
//! §3.2 assigns to the control-plane agent.

use std::collections::BTreeMap;

use tpp_isa::{Namespace, VirtAddr};

/// Which writable namespace an allocation lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Global scratch SRAM (`0x8000..`), one instance per switch.
    Global,
    /// Per-link scratch SRAM (`0x4000..`), one instance per port.
    PerLink,
}

impl Region {
    fn base(self) -> u16 {
        match self {
            Region::Global => Namespace::GlobalSram.base().0,
            Region::PerLink => Namespace::LinkSram.base().0,
        }
    }
}

/// One task's allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Owning task.
    pub task: String,
    /// Namespace.
    pub region: Region,
    /// First word index.
    pub start_word: usize,
    /// Length in words.
    pub words: usize,
}

impl Allocation {
    /// The virtual address of word `i` of this allocation.
    pub fn addr(&self, i: usize) -> VirtAddr {
        assert!(
            i < self.words,
            "index {i} outside allocation of {} words",
            self.words
        );
        VirtAddr(self.region.base() + ((self.start_word + i) * 4) as u16)
    }
}

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// Not enough contiguous free words in the region.
    OutOfMemory {
        /// Words requested.
        requested: usize,
        /// Largest free extent available.
        largest_free: usize,
    },
    /// A zero-word allocation was requested.
    ZeroSize,
}

impl core::fmt::Display for AllocError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AllocError::OutOfMemory {
                requested,
                largest_free,
            } => write!(
                f,
                "out of SRAM: requested {requested} words, largest free extent {largest_free}"
            ),
            AllocError::ZeroSize => write!(f, "zero-size allocation"),
        }
    }
}

impl std::error::Error for AllocError {}

/// First-fit free-list allocator over both scratch regions.
#[derive(Debug)]
pub struct SramAllocator {
    /// Free extents per region: start word → length.
    free: BTreeMap<(u8, usize), usize>,
    allocations: Vec<Allocation>,
}

fn region_key(region: Region) -> u8 {
    match region {
        Region::Global => 0,
        Region::PerLink => 1,
    }
}

impl SramAllocator {
    /// An allocator over `global_words` of global SRAM and `link_words`
    /// of per-link SRAM (use the ASIC's configured sizes).
    pub fn new(global_words: usize, link_words: usize) -> Self {
        let mut free = BTreeMap::new();
        if global_words > 0 {
            free.insert((region_key(Region::Global), 0), global_words);
        }
        if link_words > 0 {
            free.insert((region_key(Region::PerLink), 0), link_words);
        }
        SramAllocator {
            free,
            allocations: Vec::new(),
        }
    }

    /// An allocator matching [`tpp_asic::AsicConfig`] defaults.
    pub fn for_default_asic() -> Self {
        SramAllocator::new(0x8000 / 4, 0x1000 / 4)
    }

    /// Allocate `words` contiguous words in `region` for `task`.
    pub fn alloc(
        &mut self,
        task: &str,
        region: Region,
        words: usize,
    ) -> Result<Allocation, AllocError> {
        if words == 0 {
            return Err(AllocError::ZeroSize);
        }
        let key = region_key(region);
        let mut chosen = None;
        let mut largest = 0usize;
        for (&(r, start), &len) in &self.free {
            if r != key {
                continue;
            }
            largest = largest.max(len);
            if len >= words {
                chosen = Some((start, len));
                break;
            }
        }
        let Some((start, len)) = chosen else {
            return Err(AllocError::OutOfMemory {
                requested: words,
                largest_free: largest,
            });
        };
        self.free.remove(&(key, start));
        if len > words {
            self.free.insert((key, start + words), len - words);
        }
        let allocation = Allocation {
            task: task.to_string(),
            region,
            start_word: start,
            words,
        };
        self.allocations.push(allocation.clone());
        Ok(allocation)
    }

    /// Release every allocation owned by `task`, coalescing free space.
    pub fn release_task(&mut self, task: &str) {
        let mut freed: Vec<(Region, usize, usize)> = Vec::new();
        self.allocations.retain(|a| {
            if a.task == task {
                freed.push((a.region, a.start_word, a.words));
                false
            } else {
                true
            }
        });
        for (region, start, words) in freed {
            self.insert_free(region, start, words);
        }
    }

    fn insert_free(&mut self, region: Region, start: usize, words: usize) {
        let key = region_key(region);
        let mut start = start;
        let mut words = words;
        // Coalesce with the predecessor…
        if let Some((&(r, s), &l)) = self
            .free
            .range(..(key, start))
            .next_back()
            .filter(|((r, s), l)| *r == key && *s + **l == start)
        {
            debug_assert!(r == key && s + l == start);
            self.free.remove(&(key, s));
            start = s;
            words += l;
        }
        // …and the successor.
        if let Some(&l) = self.free.get(&(key, start + words)) {
            self.free.remove(&(key, start + words));
            words += l;
        }
        self.free.insert((key, start), words);
    }

    /// All live allocations.
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// Total free words in a region.
    pub fn free_words(&self, region: Region) -> usize {
        let key = region_key(region);
        self.free
            .iter()
            .filter(|((r, _), _)| *r == key)
            .map(|(_, l)| l)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_addressable() {
        let mut alloc = SramAllocator::new(16, 8);
        let a = alloc.alloc("rcp", Region::PerLink, 2).unwrap();
        let b = alloc.alloc("ndb", Region::PerLink, 2).unwrap();
        let c = alloc.alloc("rcp", Region::Global, 4).unwrap();
        assert_eq!(a.addr(0), VirtAddr(0x4000));
        assert_eq!(a.addr(1), VirtAddr(0x4004));
        assert_eq!(b.addr(0), VirtAddr(0x4008));
        assert_eq!(c.addr(0), VirtAddr(0x8000));
        assert_eq!(alloc.free_words(Region::PerLink), 4);
        assert_eq!(alloc.free_words(Region::Global), 12);
    }

    #[test]
    fn out_of_memory_reports_largest_extent() {
        let mut alloc = SramAllocator::new(0, 4);
        alloc.alloc("a", Region::PerLink, 3).unwrap();
        match alloc.alloc("b", Region::PerLink, 2) {
            Err(AllocError::OutOfMemory {
                requested: 2,
                largest_free: 1,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            alloc.alloc("b", Region::Global, 1),
            Err(AllocError::OutOfMemory {
                largest_free: 0,
                ..
            })
        ));
    }

    #[test]
    fn zero_size_rejected() {
        let mut alloc = SramAllocator::new(4, 4);
        assert_eq!(
            alloc.alloc("a", Region::Global, 0),
            Err(AllocError::ZeroSize)
        );
    }

    #[test]
    fn release_coalesces_and_allows_reuse() {
        let mut alloc = SramAllocator::new(8, 0);
        let _a = alloc.alloc("a", Region::Global, 3).unwrap();
        let _b = alloc.alloc("b", Region::Global, 3).unwrap();
        let _a2 = alloc.alloc("a", Region::Global, 2).unwrap();
        assert_eq!(alloc.free_words(Region::Global), 0);
        // Release "a": its two extents (0..3 and 6..8) come back.
        alloc.release_task("a");
        assert_eq!(alloc.free_words(Region::Global), 5);
        // 0..3 is free again; a 3-word fit must succeed (first fit).
        let c = alloc.alloc("c", Region::Global, 3).unwrap();
        assert_eq!(c.start_word, 0);
        // Release everything: one coalesced extent of 8.
        alloc.release_task("b");
        alloc.release_task("c");
        assert_eq!(alloc.free_words(Region::Global), 8);
        let d = alloc.alloc("d", Region::Global, 8).unwrap();
        assert_eq!(d.start_word, 0);
    }

    #[test]
    fn rcp_and_ndb_coexist_without_overlap() {
        // The §3.2 example: RCP and ndb run concurrently; their words
        // must never overlap.
        let mut alloc = SramAllocator::for_default_asic();
        let rcp_rate = alloc.alloc("rcp", Region::PerLink, 1).unwrap();
        let rcp_ts = alloc.alloc("rcp", Region::PerLink, 1).unwrap();
        let ndb = alloc.alloc("ndb", Region::PerLink, 2).unwrap();
        let words: Vec<usize> = alloc
            .allocations()
            .iter()
            .flat_map(|a| (a.start_word..a.start_word + a.words).collect::<Vec<_>>())
            .collect();
        let unique: std::collections::HashSet<_> = words.iter().collect();
        assert_eq!(unique.len(), words.len(), "overlap detected");
        assert_eq!(rcp_rate.addr(0), VirtAddr(0x4000));
        assert_eq!(rcp_ts.addr(0), VirtAddr(0x4004));
        assert_eq!(ndb.addr(0), VirtAddr(0x4008));
    }
}
