//! The network controller: versioned rule management and edge security.
//!
//! The controller is the "trusted entity" of §2.3 and the policy holder
//! of §4. It is deliberately *not* in the dataplane: it configures
//! switches between packets (installing rules, initializing task SRAM,
//! marking ports untrusted) and remembers its **intent**, which ndb's
//! verifier later compares against what TPPs observed in the dataplane —
//! "there can be a mismatch between the control plane's view of routing
//! state and the actual forwarding state in hardware" (§2.3).

use std::collections::BTreeMap;

use tpp_asic::{Asic, FlowAction, FlowEntry, FlowMatch, PortId, StripAction};

/// Trust level of an edge port (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortTrust {
    /// Trusted infrastructure: TPPs pass and execute.
    Trusted,
    /// Untrusted attachment (tenant VM, Internet): TPPs are dropped.
    UntrustedDrop,
    /// Untrusted attachment: TPPs are stripped, inner payload forwarded.
    UntrustedStrip,
}

/// The control-plane agent's per-network state.
#[derive(Debug, Default)]
pub struct NetworkController {
    /// Intent: (switch id, entry id) → the version the controller
    /// believes is installed.
    intended_versions: BTreeMap<(u32, u32), u32>,
    next_entry_id: u32,
}

impl NetworkController {
    /// A fresh controller.
    pub fn new() -> Self {
        NetworkController {
            intended_versions: BTreeMap::new(),
            next_entry_id: 1,
        }
    }

    /// Allocate a fresh globally-unique flow entry id.
    pub fn new_entry_id(&mut self) -> u32 {
        let id = self.next_entry_id;
        self.next_entry_id += 1;
        id
    }

    /// Install (or update) a flow entry on a switch, stamping it with the
    /// next version for that entry — the ndb version discipline ("ndb
    /// works by ... stamping each flow entry with a unique version
    /// number", §2.3). Returns the stamped version.
    pub fn install_rule(
        &mut self,
        asic: &mut Asic,
        entry_id: u32,
        priority: u16,
        pattern: FlowMatch,
        action: FlowAction,
    ) -> u32 {
        let key = (asic.switch_id(), entry_id);
        let version = self.intended_versions.get(&key).copied().unwrap_or(0) + 1;
        self.intended_versions.insert(key, version);
        asic.install_flow(FlowEntry {
            id: entry_id,
            version,
            priority,
            pattern,
            action,
        });
        version
    }

    /// Record a new intended version *without* touching the dataplane —
    /// this models the §2.3 control/dataplane mismatch (e.g. a rule
    /// update the switch silently failed to apply). Used by fault
    /// injection in the ndb experiment.
    pub fn intend_version_only(&mut self, switch_id: u32, entry_id: u32) -> u32 {
        let key = (switch_id, entry_id);
        let version = self.intended_versions.get(&key).copied().unwrap_or(0) + 1;
        self.intended_versions.insert(key, version);
        version
    }

    /// The controller's intended versions for one switch: entry id →
    /// version. This is what ndb's `PathPolicy.expected_versions` is
    /// built from.
    pub fn intended_versions_for(&self, switch_id: u32) -> BTreeMap<u32, u32> {
        self.intended_versions
            .iter()
            .filter(|((s, _), _)| *s == switch_id)
            .map(|((_, e), v)| (*e, *v))
            .collect()
    }

    /// Intended versions across all switches, keyed by
    /// `(switch id, entry id)` — directly usable as an ndb
    /// `PathPolicy.expected_versions`.
    pub fn intended_versions_all(&self) -> BTreeMap<(u32, u32), u32> {
        self.intended_versions.clone()
    }

    /// Apply the §4 edge policy to a port.
    pub fn set_port_trust(&mut self, asic: &mut Asic, port: PortId, trust: PortTrust) {
        let filter = match trust {
            PortTrust::Trusted => None,
            PortTrust::UntrustedDrop => Some(StripAction::Drop),
            PortTrust::UntrustedStrip => Some(StripAction::Unwrap),
        };
        asic.set_ingress_tpp_filter(port, filter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_asic::AsicConfig;

    fn asic(id: u32) -> Asic {
        Asic::new(AsicConfig::with_ports(id, 4))
    }

    #[test]
    fn install_stamps_increasing_versions() {
        let mut ctl = NetworkController::new();
        let mut sw = asic(1);
        let id = ctl.new_entry_id();
        let v1 = ctl.install_rule(
            &mut sw,
            id,
            10,
            FlowMatch::default(),
            FlowAction::Forward(1),
        );
        let v2 = ctl.install_rule(
            &mut sw,
            id,
            10,
            FlowMatch::default(),
            FlowAction::Forward(2),
        );
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(sw.tcam().get(id).unwrap().version, 2);
        assert_eq!(ctl.intended_versions_for(1).get(&id), Some(&2));
    }

    #[test]
    fn entry_ids_are_unique() {
        let mut ctl = NetworkController::new();
        let a = ctl.new_entry_id();
        let b = ctl.new_entry_id();
        assert_ne!(a, b);
    }

    #[test]
    fn intend_only_creates_dataplane_divergence() {
        let mut ctl = NetworkController::new();
        let mut sw = asic(7);
        let id = ctl.new_entry_id();
        ctl.install_rule(&mut sw, id, 5, FlowMatch::default(), FlowAction::Forward(1));
        // The controller "updates" the rule but the switch misses it.
        let intended = ctl.intend_version_only(7, id);
        assert_eq!(intended, 2);
        assert_eq!(sw.tcam().get(id).unwrap().version, 1, "dataplane is stale");
        assert_eq!(ctl.intended_versions_for(7).get(&id), Some(&2));
    }

    #[test]
    fn versions_tracked_per_switch() {
        let mut ctl = NetworkController::new();
        let mut s1 = asic(1);
        let mut s2 = asic(2);
        let id = ctl.new_entry_id();
        ctl.install_rule(&mut s1, id, 5, FlowMatch::default(), FlowAction::Forward(1));
        ctl.install_rule(&mut s2, id, 5, FlowMatch::default(), FlowAction::Forward(2));
        ctl.install_rule(&mut s2, id, 5, FlowMatch::default(), FlowAction::Forward(3));
        assert_eq!(ctl.intended_versions_for(1).get(&id), Some(&1));
        assert_eq!(ctl.intended_versions_for(2).get(&id), Some(&2));
        assert_eq!(ctl.intended_versions_all().get(&(2, id)), Some(&2));
        assert_eq!(ctl.intended_versions_all().get(&(1, id)), Some(&1));
    }

    #[test]
    fn port_trust_maps_to_filters() {
        let mut ctl = NetworkController::new();
        let mut sw = asic(1);
        ctl.set_port_trust(&mut sw, 0, PortTrust::UntrustedDrop);
        ctl.set_port_trust(&mut sw, 1, PortTrust::UntrustedStrip);
        ctl.set_port_trust(&mut sw, 2, PortTrust::Trusted);
        // Behavioural check via the dataplane: a TPP arriving on port 0
        // dies, port 2 lives (see tpp-asic's own tests for strip).
        use tpp_isa::assemble;
        use tpp_wire::ethernet::{build_frame, EtherType};
        use tpp_wire::tpp::{AddressingMode, TppBuilder};
        use tpp_wire::EthernetAddress;
        sw.l2_mut().insert(EthernetAddress::from_host_id(9), 3);
        let program = assemble("PUSH [Queue:QueueSize]").unwrap();
        let payload = TppBuilder::new(AddressingMode::Stack)
            .instructions(&program.encode_words().unwrap())
            .memory_words(2)
            .build();
        let mk = || {
            build_frame(
                EthernetAddress::from_host_id(9),
                EthernetAddress::from_host_id(8),
                EtherType::TPP,
                &payload,
            )
        };
        assert!(
            !sw.handle_frame(mk(), 0, 0).is_enqueued(),
            "dropped at untrusted port"
        );
        assert!(
            sw.handle_frame(mk(), 2, 0).is_enqueued(),
            "passes at trusted port"
        );
    }
}
