//! # tpp-control — the control-plane agent
//!
//! TPPs deliberately leave three jobs to a conventional control plane,
//! and this crate is that control plane:
//!
//! * **SRAM partitioning** (§3.2 "Multiple tasks"): "We rely on a
//!   control-plane agent to partition switch SRAM and isolate
//!   concurrently executing network tasks. For instance, if end-hosts
//!   implement both RCP and ndb, the agent would allocate a
//!   non-overlapping set of SRAM addresses to RCP and ndb." —
//!   [`SramAllocator`].
//! * **Versioned rule management** (§2.3): ndb's controller "stamps each
//!   flow entry with a unique version number"; [`NetworkController`]
//!   installs TCAM entries with version stamps and remembers its *intent*
//!   so ndb's verifier can detect control/dataplane divergence.
//! * **Edge security** (§4): "the ingress switches at the network edge
//!   (the virtual switch, or the border routers) can strip TPPs injected
//!   by VMs, or those TPPs received from the Internet" —
//!   [`NetworkController::set_port_trust`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod sram;

pub use controller::{NetworkController, PortTrust};
pub use sram::{AllocError, Allocation, Region, SramAllocator};
