//! The seeded bonding-failover scenario behind `bonding_demo` and the
//! bonding chaos tests.
//!
//! A two-path bonded diamond (two switches per path) carries a
//! sequenced data flow while `bonding_collect()` probes feed the
//! sender's [`tpp_host::BondScheduler`]. Path 0 then has a very bad
//! day, in three acts:
//!
//! 1. **t=4–12 ms** — a cellular-style degradation ramp on the sender's
//!    path-0 NIC link: loss climbs to 30%, latency inflates by 200 µs,
//!    and the link slows to a fifth of its rate, then all three ramp
//!    back down ([`tpp_netsim::LinkProfile::cellular_degradation`]).
//! 2. **t=15–18 ms** — the path-0 fabric link flaps hard down/up (a
//!    seeded [`FaultPlan`]).
//! 3. **t=20 ms** — the second path-0 switch reboots, bumping its
//!    `Switch:BootEpoch`.
//!
//! The scheduler must ride through all of it on probe telemetry alone:
//! shift weight off the degrading path, fail over within a bounded
//! number of probe intervals when the flap kills probes outright, and
//! fail over *immediately* when an echo reveals the epoch bump — while
//! the retransmission + receiver-dedup layers keep delivery exactly
//! once. Everything is seeded and discrete-event, so
//! [`BondingRun::fingerprint`] must be bit-identical at any shard
//! count.

use tpp_apps::bonding::{BondReceiver, BondSender, BondSenderConfig};
use tpp_host::bonding::{BondConfig, HealthEvent, PathHealth};
use tpp_netsim::{
    bonded_diamond_with, time, BondedDiamond, BondedDiamondParams, Endpoint, FaultPlan,
    LinkProfile, LinkState, RunLimit, SimConfig, Simulator,
};
use tpp_wire::EthernetAddress;

/// Probe cadence per path.
pub const PROBE_INTERVAL_NS: u64 = time::micros(50);
/// A probe unanswered this long is a miss.
pub const PROBE_TIMEOUT_NS: u64 = time::micros(300);
/// Probing runs past every fault so failback is visible.
pub const PROBE_STOP_NS: u64 = time::millis(30);
/// Data-frame cadence.
pub const DATA_INTERVAL_NS: u64 = time::micros(20);
/// The data flow's window.
pub const DATA_START_NS: u64 = time::micros(500);
/// End of the data window.
pub const DATA_STOP_NS: u64 = time::millis(25);
/// The degradation ramp begins here…
pub const DEGRADE_START_NS: u64 = time::millis(4);
/// …and the fabric flap window is `[FLAP_DOWN_NS, FLAP_UP_NS)`.
pub const FLAP_DOWN_NS: u64 = time::millis(15);
/// The flapped link comes back here.
pub const FLAP_UP_NS: u64 = time::millis(18);
/// The second path-0 switch reboots here.
pub const REBOOT_NS: u64 = time::millis(20);
/// Hard stop for the run (it quiesces much earlier).
pub const SCENARIO_END_NS: u64 = time::millis(40);
/// Seed for the fault plan's RNG streams.
pub const PLAN_SEED: u64 = 0x0b0d_0b0d;

/// The sender-side app configuration the scenario uses.
pub fn sender_config() -> BondSenderConfig {
    BondSenderConfig {
        dst: EthernetAddress::from_host_id(1),
        expected_hops: 4, // 2 switches out + 2 back
        probe_interval_ns: PROBE_INTERVAL_NS,
        probe_timeout_ns: PROBE_TIMEOUT_NS,
        probe_stop_ns: PROBE_STOP_NS,
        data_interval_ns: DATA_INTERVAL_NS,
        data_start_ns: DATA_START_NS,
        data_stop_ns: DATA_STOP_NS,
        payload_bytes: 1000,
        rto_ns: time::micros(800),
        bond: BondConfig::default(),
    }
}

/// Build the scenario under `config`: bonded diamond, degradation
/// profile on the path-0 NIC link, flap + reboot fault plan installed.
pub fn build(config: SimConfig) -> (Simulator, BondedDiamond) {
    let (mut sim, diamond) = bonded_diamond_with(
        config,
        BondedDiamondParams::default(),
        Box::new(BondSender::new(sender_config())),
        Box::new(BondReceiver::default()),
    );
    // Act 1: the cellular-style ramp on the sender's path-0 NIC link.
    let ramp = time::millis(2);
    let hold = time::millis(4);
    let worst = LinkState {
        loss_permille: 300,
        extra_delay_ns: time::micros(200),
        rate_permille: 200,
    };
    sim.set_link_profile(
        diamond.sender_nic(0),
        Some(LinkProfile::cellular_degradation(
            DEGRADE_START_NS,
            ramp,
            hold,
            worst,
        )),
    );
    // Acts 2 and 3: fabric flap, then a reboot further down the path.
    let fabric0 = Endpoint::switch(diamond.paths[0][0], 1);
    let mut plan = FaultPlan::new(PLAN_SEED);
    plan.link_flap(FLAP_DOWN_NS, FLAP_UP_NS, fabric0)
        .switch_reboot(REBOOT_NS, diamond.paths[0][1]);
    sim.install_faults(&plan);
    (sim, diamond)
}

/// Everything the demo prints and the chaos tests assert on, all of it
/// derived from simulation state only (no wall clock) so it is
/// shard-invariant and CI can byte-diff the JSON.
#[derive(Debug, Clone)]
pub struct BondingRun {
    /// Data sequences the sender issued.
    pub sequences_sent: u64,
    /// Sequences the receiver's application layer saw (exactly once
    /// each when `duplicate_deliveries == 0`).
    pub delivered: u64,
    /// Sequences delivered more than once to the app (must be 0).
    pub duplicate_deliveries: u64,
    /// Redundant copies the receiver suppressed before the app.
    pub duplicates_suppressed: u64,
    /// Sender retransmissions (RTO-driven).
    pub retransmits: u64,
    /// Proactive duplicate copies the scheduler requested.
    pub duplicates_sent: u64,
    /// Sequences still unacked at the end (must be 0).
    pub unacked: u64,
    /// Probes sent / echoes decoded / losses charged, per path.
    pub path_probes: Vec<(u64, u64, u64)>,
    /// First data copies scheduled per path.
    pub path_data_sent: Vec<u64>,
    /// Frames each sender NIC actually put on the wire.
    pub path_tx_frames: Vec<u64>,
    /// The scheduler's health-transition log.
    pub health_events: Vec<HealthEvent>,
    /// ns from the fabric flap to the scheduler marking path 0 `Down`.
    pub failover_detect_ns: Option<u64>,
    /// Boot-epoch changes the probes surfaced.
    pub epoch_changes: u64,
    /// Ack-latency percentiles `(p50, p99, max)`, ns.
    pub ack_latency_ns: (u64, u64, u64),
    /// Application goodput over the data window, Mbit/s.
    pub goodput_mbps: f64,
    /// Simulation time when the run went quiescent.
    pub quiesced_at_ns: u64,
}

impl BondingRun {
    /// A deterministic digest of everything observable: identical
    /// configs must produce identical fingerprints at 1, 2, or 4
    /// shards.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        mix(self.sequences_sent);
        mix(self.delivered);
        mix(self.duplicate_deliveries);
        mix(self.duplicates_suppressed);
        mix(self.retransmits);
        mix(self.duplicates_sent);
        mix(self.unacked);
        for &(s, e, l) in &self.path_probes {
            mix(s);
            mix(e);
            mix(l);
        }
        for &d in &self.path_data_sent {
            mix(d);
        }
        for &t in &self.path_tx_frames {
            mix(t);
        }
        for ev in &self.health_events {
            mix(ev.t_ns);
            mix(ev.path as u64);
            mix(health_code(ev.from));
            mix(health_code(ev.to));
        }
        mix(self.failover_detect_ns.unwrap_or(u64::MAX));
        mix(self.epoch_changes);
        mix(self.ack_latency_ns.0);
        mix(self.ack_latency_ns.1);
        mix(self.ack_latency_ns.2);
        mix(self.quiesced_at_ns);
        h
    }

    /// Render as the JSON document committed at `BENCH_bonding.json`.
    pub fn to_json(&self) -> String {
        let events: Vec<String> = self
            .health_events
            .iter()
            .map(|e| {
                format!(
                    "    {{\"t_us\": {}, \"path\": {}, \"from\": \"{:?}\", \"to\": \"{:?}\"}}",
                    e.t_ns / 1000,
                    e.path,
                    e.from,
                    e.to
                )
            })
            .collect();
        let paths: Vec<String> = self
            .path_probes
            .iter()
            .enumerate()
            .map(|(i, &(sent, echoes, lost))| {
                format!(
                    "    {{\"path\": {i}, \"probes_sent\": {sent}, \"echoes\": {echoes}, \
                     \"probes_lost\": {lost}, \"data_sent\": {}, \"tx_frames\": {}}}",
                    self.path_data_sent[i], self.path_tx_frames[i]
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"bonding_failover\",\n  \"sequences_sent\": {},\n  \
             \"delivered\": {},\n  \"duplicate_deliveries\": {},\n  \
             \"duplicates_suppressed\": {},\n  \"retransmits\": {},\n  \
             \"duplicates_sent\": {},\n  \"epoch_changes\": {},\n  \
             \"failover_detect_us\": {},\n  \
             \"ack_latency_us\": {{\"p50\": {}, \"p99\": {}, \"max\": {}}},\n  \
             \"goodput_mbps\": {:.2},\n  \"quiesced_at_us\": {},\n  \
             \"fingerprint\": \"{:#018x}\",\n  \"paths\": [\n{}\n  ],\n  \
             \"health_events\": [\n{}\n  ]\n}}\n",
            self.sequences_sent,
            self.delivered,
            self.duplicate_deliveries,
            self.duplicates_suppressed,
            self.retransmits,
            self.duplicates_sent,
            self.epoch_changes,
            self.failover_detect_ns
                .map_or("null".to_string(), |n| (n / 1000).to_string()),
            self.ack_latency_ns.0 / 1000,
            self.ack_latency_ns.1 / 1000,
            self.ack_latency_ns.2 / 1000,
            self.goodput_mbps,
            self.quiesced_at_ns / 1000,
            self.fingerprint(),
            paths.join(",\n"),
            events.join(",\n"),
        )
    }
}

fn health_code(h: PathHealth) -> u64 {
    match h {
        PathHealth::Good => 0,
        PathHealth::Degraded => 1,
        PathHealth::Down => 2,
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Drive the scenario to quiescence under `config` and fold the result.
pub fn run_bonding_scenario(config: SimConfig) -> BondingRun {
    let (mut sim, diamond) = build(config);
    sim.run(RunLimit::Quiescent {
        limit_ns: SCENARIO_END_NS,
    });
    let quiesced_at_ns = sim.now();

    let path_tx_frames: Vec<u64> = (0..2)
        .map(|p| sim.link_tx_frames(diamond.sender_nic(p)))
        .collect();
    let rx = sim.host_app::<BondReceiver>(diamond.receiver);
    let delivered = rx.delivered.len() as u64;
    let mut sorted_delivered = rx.delivered.clone();
    sorted_delivered.sort_unstable();
    sorted_delivered.dedup();
    let duplicate_deliveries = delivered - sorted_delivered.len() as u64;
    let duplicates_suppressed = rx.duplicates_suppressed;

    let tx = sim.host_app::<BondSender>(diamond.sender);
    let path_probes: Vec<(u64, u64, u64)> = (0..tx.bond.num_paths())
        .map(|p| (tx.probes_sent[p], tx.echoes_received[p], tx.bond.losses(p)))
        .collect();
    let mut latencies: Vec<u64> = tx.ack_latencies.iter().map(|&(_, l)| l).collect();
    latencies.sort_unstable();
    let failover_detect_ns = tx
        .bond
        .events()
        .iter()
        .find(|e| e.path == 0 && e.to == PathHealth::Down && e.t_ns >= FLAP_DOWN_NS)
        .map(|e| e.t_ns - FLAP_DOWN_NS);
    let payload_bits = (delivered * sender_config().payload_bytes as u64 * 8) as f64;
    let window_s = (DATA_STOP_NS - DATA_START_NS) as f64 / 1e9;
    BondingRun {
        sequences_sent: tx.sequences_sent(),
        delivered,
        duplicate_deliveries,
        duplicates_suppressed,
        retransmits: tx.retransmits,
        duplicates_sent: tx.duplicates_sent,
        unacked: tx.unacked_len() as u64,
        path_probes,
        path_data_sent: tx.data_sent.clone(),
        path_tx_frames,
        health_events: tx.bond.events().to_vec(),
        failover_detect_ns,
        epoch_changes: tx.epoch_changes,
        ack_latency_ns: (
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.99),
            percentile(&latencies, 1.0),
        ),
        goodput_mbps: payload_bits / window_s / 1e6,
        quiesced_at_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_bounds() {
        assert_eq!(percentile(&[], 0.5), 0);
        let v = vec![10, 20, 30, 40];
        assert_eq!(percentile(&v, 0.0), 10);
        assert_eq!(percentile(&v, 1.0), 40);
    }
}
