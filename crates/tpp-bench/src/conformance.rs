//! Differential conformance harness: `tpp-asic` vs `tpp-spec`.
//!
//! One [`ConformanceCase`] describes everything about a run — the TPP
//! section (possibly deliberately corrupted), the ASIC provisioning, and
//! adversarial initial register/SRAM state. [`run_case`] then executes
//! the case three ways in lock step:
//!
//! 1. the optimized ASIC with hot-path caches **on**,
//! 2. the same ASIC with hot-path caches **off**
//!    ([`AsicConfig::without_hot_path_caches`]),
//! 3. the allocation-happy reference semantics in `tpp-spec`,
//!
//! and demands bit-identical observable behavior: outcome, forwarded
//! packet bytes at every hop, execution report (instructions, cycles,
//! halt reason and pc, fault), and the complete final register/SRAM
//! state. Any mismatch is a *divergence* — a conformance bug in one of
//! the three implementations.
//!
//! [`gen_case`] draws arbitrary-but-encodable cases from a deterministic
//! stream, [`minimize`] greedily shrinks a diverging case to a small
//! replayable witness, and the JSON helpers serialize cases to
//! `tests/corpus/` where they are replayed forever as golden regression
//! tests (see `tests/conformance_corpus.rs` and the `conformance` bin).

use tpp_asic::{
    Asic, AsicConfig, AsicState, DropReason, ExecReport, HaltReason, Outcome, PortState, PortStats,
    QueueState, QueueStats, SwitchRegs,
};
use tpp_isa::{Instruction, Opcode, PacketOperand, Stat, VirtAddr};
use tpp_spec::{
    execute, LinkBank, MetaBank, QueueBank, SpecPacket, SpecReport, SpecState, SwitchBank,
};
use tpp_wire::ethernet::{build_frame, EtherType, ETHERNET_HEADER_LEN};
use tpp_wire::tpp::{TppPacket, FLAG_ECHOED};
use tpp_wire::EthernetAddress;

use proptest::test_runner::TestRng;

/// Ingress port every case injects on.
pub const INGRESS_PORT: u16 = 0;
/// Egress port the single L2 route points at.
pub const EGRESS_PORT: u16 = 1;
/// Ports provisioned on the harness ASICs.
pub const NUM_PORTS: usize = 4;
/// Default egress-queue byte limit (matches `AsicConfig::with_ports`).
pub const DEFAULT_QUEUE_LIMIT: u32 = 512 * 1024;
/// Link capacity the spec mirrors from the default port config.
pub const CAPACITY_KBPS: u32 = 10_000_000;

// ---------------------------------------------------------------------------
// Case description
// ---------------------------------------------------------------------------

/// Adversarial initial values for the global switch registers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SwitchSeed {
    /// `Switch:FlowTableVersion`.
    pub flow_table_version: u32,
    /// `Switch:L2TableHits`.
    pub l2_hits: u64,
    /// `Switch:L3TableHits`.
    pub l3_hits: u64,
    /// `Switch:TCAMHits`.
    pub tcam_hits: u64,
    /// `Switch:PacketsProcessed` (may exceed 32 bits to exercise the
    /// wrapping low-32 read).
    pub packets_processed: u64,
    /// `Switch:TPPsExecuted`.
    pub tpps_executed: u64,
    /// `Switch:BootEpoch`.
    pub boot_epoch: u32,
}

/// Adversarial initial values for the egress port's link registers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkSeed {
    /// `Link:RX-Bytes`.
    pub rx_bytes: u64,
    /// `Link:TX-Bytes`.
    pub tx_bytes: u64,
    /// `Link:RX-Packets`.
    pub rx_packets: u64,
    /// `Link:TX-Packets`.
    pub tx_packets: u64,
    /// `Link:BytesDropped`.
    pub bytes_dropped: u64,
    /// `Link:BytesEnqueued`.
    pub bytes_enqueued: u64,
    /// `Link:EcnMarked`.
    pub ecn_marked: u64,
    /// `Link:SnrDeciBel`.
    pub snr_decidb: u32,
    /// `Link:RX-Utilization` (permille).
    pub rx_utilization_permille: u32,
    /// `Link:TX-Utilization` (permille).
    pub tx_utilization_permille: u32,
}

/// Adversarial initial values for the egress queue's registers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueSeed {
    /// `Queue:QueueSize` — pre-existing occupancy the drop-tail check
    /// sees (the harness models it as registers only, no resident
    /// frames, so the net occupancy change across one hop is zero).
    pub queue_size_bytes: u64,
    /// `Queue:BytesEnqueued`.
    pub bytes_enqueued: u64,
    /// `Queue:BytesDropped`.
    pub bytes_dropped: u64,
    /// `Queue:PacketsEnqueued`.
    pub packets_enqueued: u64,
    /// `Queue:PacketsDropped`.
    pub packets_dropped: u64,
    /// `Queue:HighWatermark`.
    pub high_watermark_bytes: u64,
}

/// One self-contained conformance scenario: TPP bytes + provisioning +
/// initial state + number of hops to simulate. Serializable to JSON so a
/// diverging case becomes a committed regression witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceCase {
    /// Human-readable case name (directed cases) or `seed-N` (fuzz).
    pub name: String,
    /// `Switch:SwitchID` of the harness switch.
    pub switch_id: u32,
    /// TCPU cycle budget.
    pub budget: u32,
    /// How many times the frame is re-injected (hops simulated).
    pub rounds: u32,
    /// Egress queue byte limit.
    pub queue_limit_bytes: u32,
    /// Wall-clock time of the first round; advances 1 µs per round.
    pub now0_ns: u64,
    /// TPP addressing-mode byte (0 stack, 1 hop; other values must be
    /// rejected identically by both parsers).
    pub mode: u8,
    /// Initial hop counter.
    pub hop0: u8,
    /// Initial stack pointer (byte offset into packet memory).
    pub sp0: u16,
    /// Initial TPP flag byte (e.g. [`FLAG_ECHOED`] for inert packets).
    pub flags0: u8,
    /// Per-hop slice length in words (hop addressing).
    pub per_hop_words: u16,
    /// Raw instruction words (not necessarily decodable — that is the
    /// point).
    pub insns: Vec<u32>,
    /// Initial packet-memory words.
    pub memory: Vec<u32>,
    /// Initial per-port link SRAM image (defines the provisioned size).
    pub link_sram: Vec<u32>,
    /// Initial global SRAM image (defines the provisioned size).
    pub global_sram: Vec<u32>,
    /// Initial switch registers.
    pub switch_seed: SwitchSeed,
    /// Initial egress-link registers.
    pub link_seed: LinkSeed,
    /// Initial egress-queue registers.
    pub queue_seed: QueueSeed,
    /// Optional byte-level corruption of the emitted TPP section:
    /// `(index mod section length, xor mask)`.
    pub corrupt: Option<(usize, u8)>,
}

impl Default for ConformanceCase {
    fn default() -> Self {
        ConformanceCase {
            name: "default".to_string(),
            switch_id: 7,
            budget: 300,
            rounds: 1,
            queue_limit_bytes: DEFAULT_QUEUE_LIMIT,
            now0_ns: 1_000,
            mode: 0,
            hop0: 0,
            sp0: 0,
            flags0: 0,
            per_hop_words: 0,
            insns: Vec::new(),
            memory: Vec::new(),
            link_sram: vec![0; 8],
            global_sram: vec![0; 8],
            switch_seed: SwitchSeed::default(),
            link_seed: LinkSeed::default(),
            queue_seed: QueueSeed::default(),
            corrupt: None,
        }
    }
}

impl ConformanceCase {
    /// The TPP section bytes this case injects (header + instructions +
    /// memory, with the optional corruption applied).
    pub fn tpp_section(&self) -> Vec<u8> {
        let pkt = SpecPacket {
            version: 1,
            flags: self.flags0,
            mode: self.mode,
            hop: self.hop0,
            sp: self.sp0,
            per_hop_len: self.per_hop_words.wrapping_mul(4),
            inner_ethertype: 0,
            insns: self.insns.clone(),
            memory: self.memory.clone(),
            payload: Vec::new(),
        };
        let mut bytes = pkt.emit();
        if let Some((idx, xor)) = self.corrupt {
            let n = bytes.len();
            bytes[idx % n] ^= xor;
        }
        bytes
    }

    /// The full Ethernet frame (routed to [`EGRESS_PORT`] via L2).
    pub fn frame(&self) -> Vec<u8> {
        build_frame(
            EthernetAddress::from_host_id(1),
            EthernetAddress::from_host_id(9),
            EtherType::TPP,
            &self.tpp_section(),
        )
    }

    /// The initial ASIC-side state image restored into both engines.
    #[allow(clippy::field_reassign_with_default)]
    fn initial_asic_state(&self) -> AsicState {
        let mut regs = SwitchRegs::new(self.switch_id);
        regs.flow_table_version = self.switch_seed.flow_table_version;
        regs.l2_hits = self.switch_seed.l2_hits;
        regs.l3_hits = self.switch_seed.l3_hits;
        regs.tcam_hits = self.switch_seed.tcam_hits;
        regs.packets_processed = self.switch_seed.packets_processed;
        regs.tpps_executed = self.switch_seed.tpps_executed;
        regs.boot_epoch = self.switch_seed.boot_epoch;

        let blank_queue = || QueueState {
            stats: QueueStats::default(),
            frames: Vec::new(),
            limit_bytes: self.queue_limit_bytes,
        };
        let mut ports: Vec<PortState> = (0..NUM_PORTS)
            .map(|_| PortState {
                stats: PortStats::default(),
                link_sram: vec![0; self.link_sram.len()],
                queues: vec![blank_queue()],
            })
            .collect();

        let egress = &mut ports[EGRESS_PORT as usize];
        let mut stats = PortStats::default();
        stats.rx_bytes = self.link_seed.rx_bytes;
        stats.tx_bytes = self.link_seed.tx_bytes;
        stats.rx_packets = self.link_seed.rx_packets;
        stats.tx_packets = self.link_seed.tx_packets;
        stats.bytes_dropped = self.link_seed.bytes_dropped;
        stats.bytes_enqueued = self.link_seed.bytes_enqueued;
        stats.ecn_marked = self.link_seed.ecn_marked;
        stats.snr_decidb = self.link_seed.snr_decidb;
        stats.rx_utilization_permille = self.link_seed.rx_utilization_permille;
        stats.tx_utilization_permille = self.link_seed.tx_utilization_permille;
        egress.stats = stats;
        egress.link_sram = self.link_sram.clone();
        let q = &mut egress.queues[0];
        q.stats.queue_size_bytes = self.queue_seed.queue_size_bytes;
        q.stats.bytes_enqueued = self.queue_seed.bytes_enqueued;
        q.stats.bytes_dropped = self.queue_seed.bytes_dropped;
        q.stats.packets_enqueued = self.queue_seed.packets_enqueued;
        q.stats.packets_dropped = self.queue_seed.packets_dropped;
        q.stats.high_watermark_bytes = self.queue_seed.high_watermark_bytes;

        AsicState {
            regs,
            global_sram: self.global_sram.clone(),
            ports,
        }
    }

    /// The equivalent initial state for the reference interpreter.
    fn initial_spec_state(&self) -> SpecState {
        SpecState {
            switch: SwitchBank {
                switch_id: self.switch_id,
                flow_table_version: self.switch_seed.flow_table_version,
                l2_hits: self.switch_seed.l2_hits,
                l3_hits: self.switch_seed.l3_hits,
                tcam_hits: self.switch_seed.tcam_hits,
                packets_processed: self.switch_seed.packets_processed,
                tpps_executed: self.switch_seed.tpps_executed,
                wall_clock_ns: 0,
                boot_epoch: self.switch_seed.boot_epoch,
            },
            link: LinkBank {
                rx_bytes: self.link_seed.rx_bytes,
                tx_bytes: self.link_seed.tx_bytes,
                rx_utilization_permille: self.link_seed.rx_utilization_permille,
                tx_utilization_permille: self.link_seed.tx_utilization_permille,
                bytes_dropped: self.link_seed.bytes_dropped,
                bytes_enqueued: self.link_seed.bytes_enqueued,
                rx_packets: self.link_seed.rx_packets,
                tx_packets: self.link_seed.tx_packets,
                capacity_kbps: CAPACITY_KBPS,
                ecn_marked: self.link_seed.ecn_marked,
                snr_decidb: self.link_seed.snr_decidb,
            },
            queue: QueueBank {
                queue_size_bytes: self.queue_seed.queue_size_bytes,
                bytes_enqueued: self.queue_seed.bytes_enqueued,
                bytes_dropped: self.queue_seed.bytes_dropped,
                packets_enqueued: self.queue_seed.packets_enqueued,
                packets_dropped: self.queue_seed.packets_dropped,
                high_watermark_bytes: self.queue_seed.high_watermark_bytes,
                limit_bytes: self.queue_limit_bytes,
            },
            meta: MetaBank::default(),
            link_sram: self.link_sram.clone(),
            global_sram: self.global_sram.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// Differential engine
// ---------------------------------------------------------------------------

/// What a conforming run looked like (for reporting/statistics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaseSummary {
    /// Rounds actually simulated (≤ `case.rounds`; a queue-full drop
    /// ends the walk early).
    pub rounds_run: u32,
    /// Rounds in which the TCPU actually executed the TPP.
    pub tpp_executed_rounds: u32,
    /// True when the walk ended in a queue-full drop.
    pub dropped: bool,
}

/// Run one case through both ASIC configurations and the reference
/// semantics. `Ok` means full agreement; `Err` carries a human-readable
/// description of the first divergence.
pub fn run_case(case: &ConformanceCase) -> Result<CaseSummary, String> {
    let mk_cfg = || {
        let mut cfg = AsicConfig::with_ports(case.switch_id, NUM_PORTS);
        cfg.tcpu_cycle_budget = case.budget;
        cfg.global_sram_words = case.global_sram.len();
        cfg.link_sram_words = case.link_sram.len();
        cfg.queue_limit_bytes(case.queue_limit_bytes)
    };
    let mut cached = Asic::new(mk_cfg());
    let mut uncached = Asic::new(mk_cfg().without_hot_path_caches());
    for asic in [&mut cached, &mut uncached] {
        asic.l2_mut()
            .insert(EthernetAddress::from_host_id(1), EGRESS_PORT);
    }
    let state0 = case.initial_asic_state();
    cached.restore(&state0);
    uncached.restore(&state0);
    let mut spec = case.initial_spec_state();

    let mut frame = case.frame();
    let mut summary = CaseSummary::default();
    for round in 0..case.rounds {
        let now = case.now0_ns + round as u64 * 1_000;
        let out_a = cached.handle_frame(frame.clone(), INGRESS_PORT, now);
        let out_b = uncached.handle_frame(frame.clone(), INGRESS_PORT, now);
        if out_a != out_b {
            return Err(format!(
                "round {round}: cached/uncached outcome diverged:\n  \
                 cached:   {out_a:?}\n  uncached: {out_b:?}"
            ));
        }
        let (spec_frame, spec_report) = spec_round(&mut spec, &frame, now, case.budget);
        summary.rounds_run += 1;
        match out_a {
            Outcome::Enqueued { port, queue, exec } => {
                if (port, queue) != (EGRESS_PORT, 0) {
                    return Err(format!(
                        "round {round}: frame routed to port {port} queue {queue}, \
                         expected ({EGRESS_PORT}, 0)"
                    ));
                }
                let expect = spec_frame.ok_or_else(|| {
                    format!("round {round}: spec predicted queue-full drop, ASIC enqueued")
                })?;
                compare_exec(round, exec.as_ref(), spec_report.as_ref())?;
                if exec.is_some() {
                    summary.tpp_executed_rounds += 1;
                }
                let fa = cached
                    .dequeue(EGRESS_PORT)
                    .ok_or_else(|| format!("round {round}: cached enqueued but dequeue empty"))?;
                let fb = uncached
                    .dequeue(EGRESS_PORT)
                    .ok_or_else(|| format!("round {round}: uncached enqueued but dequeue empty"))?;
                if fa != fb {
                    return Err(format!(
                        "round {round}: forwarded bytes diverged cached vs uncached:\n{}",
                        diff_bytes(&fa, &fb)
                    ));
                }
                if fa != expect {
                    return Err(format!(
                        "round {round}: forwarded bytes diverged asic vs spec:\n{}",
                        diff_bytes(&fa, &expect)
                    ));
                }
                frame = fa;
            }
            Outcome::Dropped {
                reason: DropReason::QueueFull { .. },
            } => {
                if spec_frame.is_some() {
                    return Err(format!(
                        "round {round}: ASIC dropped (queue full), spec predicted enqueue"
                    ));
                }
                if spec_report.is_some() {
                    summary.tpp_executed_rounds += 1;
                }
                summary.dropped = true;
                break;
            }
            other => {
                return Err(format!("round {round}: unexpected outcome {other:?}"));
            }
        }
    }

    let snap_a = cached.snapshot();
    let snap_b = uncached.snapshot();
    if snap_a != snap_b {
        return Err(format!(
            "final state diverged cached vs uncached:\n  cached:   {snap_a:?}\n  \
             uncached: {snap_b:?}"
        ));
    }
    compare_final(&snap_a, &spec)?;
    Ok(summary)
}

/// The reference semantics of one switch traversal: the §3 pipeline as
/// restated bookkeeping (lookup registers, metadata, enqueue/dequeue
/// accounting) around the `tpp-spec` interpreter. Returns the forwarded
/// frame (`None` on a queue-full drop) and the execution report (`None`
/// when the TCPU did not run: echoed or malformed TPP).
pub fn spec_round(
    spec: &mut SpecState,
    frame: &[u8],
    now_ns: u64,
    budget: u32,
) -> (Option<Vec<u8>>, Option<SpecReport>) {
    spec.switch.wall_clock_ns = now_ns;
    spec.switch.packets_processed += 1;
    spec.switch.l2_hits += 1;
    spec.meta = MetaBank {
        input_port: INGRESS_PORT as u32,
        output_port: EGRESS_PORT as u32,
        matched_entry_id: 0,
        matched_entry_version: 0,
        queue_id: 0,
        packet_length: frame.len() as u32,
        arrival_time_ns: now_ns,
        alternate_routes: 1,
    };
    let mut out = frame.to_vec();
    let mut report = None;
    match SpecPacket::parse(&frame[ETHERNET_HEADER_LEN..]) {
        // An echoed TPP is inert: forwarded unchanged, not executed,
        // not counted.
        Ok(pkt) if pkt.flags & FLAG_ECHOED != 0 => {}
        Ok(mut pkt) => {
            let r = execute(&mut pkt, spec, budget);
            spec.switch.tpps_executed += 1;
            out[ETHERNET_HEADER_LEN..].copy_from_slice(&pkt.emit());
            report = Some(r);
        }
        // A malformed TPP section is forwarded untouched.
        Err(_) => {}
    }
    let len = out.len() as u64;
    spec.link.rx_bytes += len;
    spec.link.rx_packets += 1;
    let accepted = spec.queue.queue_size_bytes + len <= spec.queue.limit_bytes as u64;
    if accepted {
        spec.queue.queue_size_bytes += len;
        spec.queue.bytes_enqueued += len;
        spec.queue.packets_enqueued += 1;
        spec.queue.high_watermark_bytes = spec
            .queue
            .high_watermark_bytes
            .max(spec.queue.queue_size_bytes);
        spec.link.bytes_enqueued += len;
        // The harness drains the queue immediately (one frame in flight).
        spec.queue.queue_size_bytes -= len;
        spec.link.tx_bytes += len;
        spec.link.tx_packets += 1;
        (Some(out), report)
    } else {
        spec.queue.bytes_dropped += len;
        spec.queue.packets_dropped += 1;
        spec.link.bytes_dropped += len;
        (None, report)
    }
}

/// Canonical comparable form of a halt: (label, pc, fault debug string).
fn halt_key_asic(h: &HaltReason) -> (&'static str, usize, String) {
    match h {
        HaltReason::CexecFailed { pc } => ("cexec_failed", *pc, String::new()),
        HaltReason::Mmu { pc, fault } => ("mmu_fault", *pc, format!("{fault:?}")),
        HaltReason::PacketMemory { pc } => ("packet_memory", *pc, String::new()),
        HaltReason::BadInstruction { pc } => ("bad_instruction", *pc, String::new()),
        HaltReason::BudgetExceeded { pc } => ("budget_exceeded", *pc, String::new()),
    }
}

fn halt_key_spec(h: &tpp_spec::SpecHalt) -> (&'static str, usize, String) {
    use tpp_spec::SpecHalt;
    let fault = match h {
        SpecHalt::Fault { fault, .. } => format!("{fault:?}"),
        _ => String::new(),
    };
    (h.name(), h.pc(), fault)
}

fn compare_exec(
    round: u32,
    asic: Option<&ExecReport>,
    spec: Option<&SpecReport>,
) -> Result<(), String> {
    match (asic, spec) {
        (None, None) => Ok(()),
        (Some(a), Some(s)) => {
            let mut errs = Vec::new();
            if a.instructions_executed != s.instructions_executed {
                errs.push(format!(
                    "instructions: asic={} spec={}",
                    a.instructions_executed, s.instructions_executed
                ));
            }
            if a.cycles != s.cycles {
                errs.push(format!("cycles: asic={} spec={}", a.cycles, s.cycles));
            }
            if a.wrote_switch != s.wrote_switch {
                errs.push(format!(
                    "wrote_switch: asic={} spec={}",
                    a.wrote_switch, s.wrote_switch
                ));
            }
            let ka = a.halt.as_ref().map(halt_key_asic);
            let ks = s.halt.as_ref().map(halt_key_spec);
            if ka != ks {
                errs.push(format!("halt: asic={ka:?} spec={ks:?}"));
            }
            if errs.is_empty() {
                Ok(())
            } else {
                Err(format!(
                    "round {round}: execution report diverged: {}",
                    errs.join("; ")
                ))
            }
        }
        (a, s) => Err(format!(
            "round {round}: TCPU ran in one engine only: asic={:?} spec={:?}",
            a.is_some(),
            s.is_some()
        )),
    }
}

fn diff_bytes(a: &[u8], b: &[u8]) -> String {
    if a.len() != b.len() {
        return format!("  lengths differ: {} vs {}", a.len(), b.len());
    }
    let mut out = String::new();
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x != y {
            out.push_str(&format!("  byte {i}: {x:#04x} vs {y:#04x}\n"));
        }
    }
    out
}

/// Field-by-field comparison of the final ASIC snapshot against the
/// reference state. Every TPP-visible register and SRAM word is listed
/// explicitly so a divergence names the exact register.
fn compare_final(snap: &AsicState, spec: &SpecState) -> Result<(), String> {
    let mut errs: Vec<String> = Vec::new();
    fn chk<T: PartialEq + std::fmt::Debug>(errs: &mut Vec<String>, label: &str, asic: T, spec: T) {
        if asic != spec {
            errs.push(format!("  {label}: asic={asic:?} spec={spec:?}"));
        }
    }
    let r = &snap.regs;
    let s = &spec.switch;
    chk(&mut errs, "Switch:SwitchID", r.switch_id, s.switch_id);
    chk(
        &mut errs,
        "Switch:FlowTableVersion",
        r.flow_table_version,
        s.flow_table_version,
    );
    chk(&mut errs, "Switch:L2TableHits", r.l2_hits, s.l2_hits);
    chk(&mut errs, "Switch:L3TableHits", r.l3_hits, s.l3_hits);
    chk(&mut errs, "Switch:TCAMHits", r.tcam_hits, s.tcam_hits);
    chk(
        &mut errs,
        "Switch:PacketsProcessed",
        r.packets_processed,
        s.packets_processed,
    );
    chk(
        &mut errs,
        "Switch:TPPsExecuted",
        r.tpps_executed,
        s.tpps_executed,
    );
    chk(
        &mut errs,
        "Switch:WallClock",
        r.wall_clock_ns,
        s.wall_clock_ns,
    );
    chk(&mut errs, "Switch:BootEpoch", r.boot_epoch, s.boot_epoch);

    let p = &snap.ports[EGRESS_PORT as usize];
    let l = &spec.link;
    chk(&mut errs, "Link:RX-Bytes", p.stats.rx_bytes, l.rx_bytes);
    chk(&mut errs, "Link:TX-Bytes", p.stats.tx_bytes, l.tx_bytes);
    chk(
        &mut errs,
        "Link:RX-Packets",
        p.stats.rx_packets,
        l.rx_packets,
    );
    chk(
        &mut errs,
        "Link:TX-Packets",
        p.stats.tx_packets,
        l.tx_packets,
    );
    chk(
        &mut errs,
        "Link:BytesDropped",
        p.stats.bytes_dropped,
        l.bytes_dropped,
    );
    chk(
        &mut errs,
        "Link:BytesEnqueued",
        p.stats.bytes_enqueued,
        l.bytes_enqueued,
    );
    chk(
        &mut errs,
        "Link:EcnMarked",
        p.stats.ecn_marked,
        l.ecn_marked,
    );
    chk(
        &mut errs,
        "Link:SnrDeciBel",
        p.stats.snr_decidb,
        l.snr_decidb,
    );
    chk(
        &mut errs,
        "Link:RX-Utilization",
        p.stats.rx_utilization_permille,
        l.rx_utilization_permille,
    );
    chk(
        &mut errs,
        "Link:TX-Utilization",
        p.stats.tx_utilization_permille,
        l.tx_utilization_permille,
    );

    let qa = &p.queues[0];
    let q = &spec.queue;
    chk(
        &mut errs,
        "Queue:QueueSize",
        qa.stats.queue_size_bytes,
        q.queue_size_bytes,
    );
    chk(
        &mut errs,
        "Queue:BytesEnqueued",
        qa.stats.bytes_enqueued,
        q.bytes_enqueued,
    );
    chk(
        &mut errs,
        "Queue:BytesDropped",
        qa.stats.bytes_dropped,
        q.bytes_dropped,
    );
    chk(
        &mut errs,
        "Queue:PacketsEnqueued",
        qa.stats.packets_enqueued,
        q.packets_enqueued,
    );
    chk(
        &mut errs,
        "Queue:PacketsDropped",
        qa.stats.packets_dropped,
        q.packets_dropped,
    );
    chk(
        &mut errs,
        "Queue:HighWatermark",
        qa.stats.high_watermark_bytes,
        q.high_watermark_bytes,
    );
    chk(&mut errs, "Queue:Limit", qa.limit_bytes, q.limit_bytes);

    chk(&mut errs, "link SRAM", &p.link_sram, &spec.link_sram);
    chk(
        &mut errs,
        "global SRAM",
        &snap.global_sram,
        &spec.global_sram,
    );

    if errs.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "final state diverged asic vs spec:\n{}",
            errs.join("\n")
        ))
    }
}

// ---------------------------------------------------------------------------
// Case generation
// ---------------------------------------------------------------------------

/// A virtual address worth probing: real statistics, SRAM cells (in and
/// out of range), reserved holes, and fully random values.
fn gen_addr(rng: &mut TestRng) -> u16 {
    match rng.usize_in(0..12) {
        0..=4 => {
            let stats = Stat::ALL;
            stats[rng.usize_in(0..stats.len())].addr().0
        }
        5 | 6 => 0x4000 + 4 * rng.usize_in(0..24) as u16,
        7 | 8 => 0x8000 + 4 * rng.usize_in(0..24) as u16,
        9 | 10 => [0x0ffc, 0x1ffc, 0x2ffc, 0x3ffc, 0x5000, 0x7abc][rng.usize_in(0..6)],
        _ => rng.next_u64() as u16,
    }
}

/// An instruction word: usually well-formed, sometimes raw noise,
/// sometimes near-valid (bad operand mode / unassigned opcode).
fn gen_word(rng: &mut TestRng) -> u32 {
    let poffs: [u32; 6] = [0, 1, 2, 3, 8, 511];
    match rng.usize_in(0..100) {
        0..=69 => {
            let op = Opcode::ALL[rng.usize_in(0..Opcode::ALL.len())] as u32;
            let mode = rng.usize_in(0..3) as u32;
            let poff = poffs[rng.usize_in(0..poffs.len())];
            (op << 27) | (mode << 25) | (poff << 16) | gen_addr(rng) as u32
        }
        70..=84 => rng.next_u64() as u32,
        _ => {
            let op = rng.usize_in(0..32) as u32;
            let mode = 3u32;
            let poff = poffs[rng.usize_in(0..poffs.len())];
            (op << 27) | (mode << 25) | (poff << 16) | gen_addr(rng) as u32
        }
    }
}

fn gen_counter(rng: &mut TestRng) -> u64 {
    match rng.usize_in(0..3) {
        0 => 0,
        1 => rng.usize_in(0..100_000) as u64,
        _ => (1u64 << 32) + rng.usize_in(0..100_000) as u64,
    }
}

/// Deterministically generate the `seed`-th fuzz case. Same seed, same
/// case — forever — so a CI failure log line is already a reproducer.
pub fn gen_case(seed: u64) -> ConformanceCase {
    let mut rng = TestRng::deterministic(&format!("tpp-conformance-{seed}"));
    let insns: Vec<u32> = (0..rng.usize_in(0..11))
        .map(|_| gen_word(&mut rng))
        .collect();
    let memory: Vec<u32> = (0..rng.usize_in(0..13))
        .map(|_| match rng.usize_in(0..4) {
            0 => rng.next_u64() as u32,
            _ => rng.usize_in(0..16) as u32,
        })
        .collect();
    let link_sram: Vec<u32> = (0..rng.usize_in(4..17))
        .map(|_| rng.usize_in(0..64) as u32)
        .collect();
    let global_sram: Vec<u32> = (0..rng.usize_in(4..17))
        .map(|_| rng.usize_in(0..64) as u32)
        .collect();
    let sp0 = if rng.usize_in(0..5) < 4 {
        (4 * rng.usize_in(0..memory.len() + 1)) as u16
    } else {
        rng.next_u64() as u16
    };
    let flags0 = match rng.usize_in(0..10) {
        0..=7 => 0,
        8 => FLAG_ECHOED,
        _ => (rng.next_u64() & 0x07) as u8,
    };
    let hop0 = if rng.usize_in(0..10) < 9 {
        rng.usize_in(0..4) as u8
    } else {
        rng.next_u64() as u8
    };
    let mode = if rng.usize_in(0..10) < 8 { 0 } else { 1 };
    let per_hop_words = if mode == 1 {
        rng.usize_in(0..4) as u16
    } else {
        rng.usize_in(0..2) as u16
    };
    let budget = match rng.usize_in(0..4) {
        0 | 1 => 300,
        2 => (4 + rng.usize_in(0..12)) as u32,
        _ => rng.usize_in(0..6) as u32,
    };
    let (queue_limit_bytes, queue_size) = if rng.usize_in(0..4) < 3 {
        (DEFAULT_QUEUE_LIMIT, rng.usize_in(0..2048) as u64)
    } else {
        let limit = rng.usize_in(20..600) as u32;
        (limit, rng.usize_in(0..limit as usize + 64) as u64)
    };
    let switch_seed = SwitchSeed {
        flow_table_version: rng.usize_in(0..16) as u32,
        l2_hits: gen_counter(&mut rng),
        l3_hits: gen_counter(&mut rng),
        tcam_hits: gen_counter(&mut rng),
        packets_processed: gen_counter(&mut rng),
        tpps_executed: gen_counter(&mut rng),
        boot_epoch: rng.usize_in(0..8) as u32,
    };
    let link_seed = LinkSeed {
        rx_bytes: gen_counter(&mut rng),
        tx_bytes: gen_counter(&mut rng),
        rx_packets: gen_counter(&mut rng),
        tx_packets: gen_counter(&mut rng),
        bytes_dropped: gen_counter(&mut rng),
        bytes_enqueued: gen_counter(&mut rng),
        ecn_marked: gen_counter(&mut rng),
        snr_decidb: rng.usize_in(0..400) as u32,
        rx_utilization_permille: rng.usize_in(0..1001) as u32,
        tx_utilization_permille: rng.usize_in(0..1001) as u32,
    };
    let queue_seed = QueueSeed {
        queue_size_bytes: queue_size,
        bytes_enqueued: gen_counter(&mut rng),
        bytes_dropped: gen_counter(&mut rng),
        packets_enqueued: gen_counter(&mut rng),
        packets_dropped: gen_counter(&mut rng),
        high_watermark_bytes: queue_size.max(gen_counter(&mut rng)),
    };
    let corrupt = if rng.usize_in(0..8) == 0 {
        Some((rng.usize_in(0..64), (rng.next_u64() as u8) | 1))
    } else {
        None
    };
    let switch_id = if rng.usize_in(0..4) == 0 {
        rng.next_u64() as u32
    } else {
        7
    };
    let now0_ns = match rng.usize_in(0..3) {
        0 => 1_000,
        1 => rng.usize_in(0..1_000_000) as u64,
        _ => (1u64 << 34) + rng.usize_in(0..1_000_000) as u64,
    };
    ConformanceCase {
        name: format!("seed-{seed}"),
        switch_id,
        budget,
        rounds: rng.usize_in(1..4) as u32,
        queue_limit_bytes,
        now0_ns,
        mode,
        hop0,
        sp0,
        flags0,
        per_hop_words,
        insns,
        memory,
        link_sram,
        global_sram,
        switch_seed,
        link_seed,
        queue_seed,
        corrupt,
    }
}

/// Random byte blobs for the parse-agreement check: valid sections,
/// mutated valid sections, and pure noise.
pub fn gen_blob(rng: &mut TestRng) -> Vec<u8> {
    match rng.usize_in(0..3) {
        0 => gen_case(rng.next_u64()).tpp_section(),
        1 => {
            let mut bytes = gen_case(rng.next_u64()).tpp_section();
            let n = bytes.len();
            let idx = rng.usize_in(0..n);
            bytes[idx] ^= (rng.next_u64() as u8) | 1;
            bytes
        }
        _ => (0..rng.usize_in(0..80))
            .map(|_| rng.next_u64() as u8)
            .collect(),
    }
}

/// Require `tpp-spec` and `tpp-wire` to agree on whether `blob` is a
/// valid TPP section, and (when valid) that the spec's re-serialization
/// is the identity.
pub fn parse_agreement(blob: &[u8]) -> Result<(), String> {
    let spec = SpecPacket::parse(blob);
    let wire = TppPacket::new_checked(blob);
    match (&spec, &wire) {
        (Ok(pkt), Ok(_)) => {
            if pkt.emit() == blob {
                Ok(())
            } else {
                Err("emit(parse(blob)) != blob".to_string())
            }
        }
        (Err(_), Err(_)) => Ok(()),
        (Ok(_), Err(e)) => Err(format!("spec accepts, wire rejects ({e:?})")),
        (Err(e), Ok(_)) => Err(format!("wire accepts, spec rejects ({e:?})")),
    }
}

// ---------------------------------------------------------------------------
// Minimization
// ---------------------------------------------------------------------------

/// Greedily shrink a diverging case: try one simplification at a time
/// (fewer rounds, fewer/zeroed instructions, default seeds, smaller
/// memory/SRAM, default provisioning), keep any candidate that still
/// diverges, repeat to a fixpoint.
pub fn minimize(case: &ConformanceCase) -> ConformanceCase {
    let mut best = case.clone();
    if run_case(&best).is_ok() {
        return best;
    }
    for _ in 0..400 {
        let mut improved = false;
        for cand in candidates(&best) {
            if cand == best {
                continue;
            }
            if run_case(&cand).is_err() {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    best
}

fn candidates(c: &ConformanceCase) -> Vec<ConformanceCase> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut ConformanceCase)| {
        let mut d = c.clone();
        f(&mut d);
        d.name = format!("{}-min", c.name.trim_end_matches("-min"));
        out.push(d);
    };
    if c.rounds > 1 {
        push(&|d| d.rounds = 1);
    }
    for i in 0..c.insns.len() {
        push(&move |d| {
            d.insns.remove(i);
        });
    }
    for i in 0..c.insns.len() {
        if c.insns[i] != 0 {
            push(&move |d| d.insns[i] = 0);
        }
    }
    if c.corrupt.is_some() {
        push(&|d| d.corrupt = None);
    }
    if !c.memory.is_empty() {
        push(&|d| {
            d.memory.pop();
            d.sp0 = d.sp0.min((d.memory.len() * 4) as u16);
        });
    }
    for i in 0..c.memory.len() {
        if c.memory[i] != 0 {
            push(&move |d| d.memory[i] = 0);
        }
    }
    if c.link_sram.len() > 4 {
        push(&|d| d.link_sram.truncate(d.link_sram.len() / 2));
    }
    if c.global_sram.len() > 4 {
        push(&|d| d.global_sram.truncate(d.global_sram.len() / 2));
    }
    if c.link_sram.iter().any(|&w| w != 0) {
        push(&|d| d.link_sram.iter_mut().for_each(|w| *w = 0));
    }
    if c.global_sram.iter().any(|&w| w != 0) {
        push(&|d| d.global_sram.iter_mut().for_each(|w| *w = 0));
    }
    if c.switch_seed != SwitchSeed::default() {
        push(&|d| d.switch_seed = SwitchSeed::default());
    }
    if c.link_seed != LinkSeed::default() {
        push(&|d| d.link_seed = LinkSeed::default());
    }
    if c.queue_seed != QueueSeed::default() {
        push(&|d| d.queue_seed = QueueSeed::default());
    }
    if c.flags0 != 0 {
        push(&|d| d.flags0 = 0);
    }
    if c.hop0 != 0 {
        push(&|d| d.hop0 = 0);
    }
    if c.sp0 != 0 {
        push(&|d| d.sp0 = 0);
    }
    if c.mode != 0 {
        push(&|d| d.mode = 0);
    }
    if c.per_hop_words != 0 {
        push(&|d| d.per_hop_words = 0);
    }
    if c.queue_limit_bytes != DEFAULT_QUEUE_LIMIT {
        push(&|d| d.queue_limit_bytes = DEFAULT_QUEUE_LIMIT);
    }
    if c.budget != 300 {
        push(&|d| d.budget = 300);
    }
    if c.switch_id != 7 {
        push(&|d| d.switch_id = 7);
    }
    if c.now0_ns != 1_000 {
        push(&|d| d.now0_ns = 1_000);
    }
    out
}

// ---------------------------------------------------------------------------
// Directed cases (the committed corpus seed)
// ---------------------------------------------------------------------------

fn enc(i: Instruction) -> u32 {
    i.encode().expect("directed instruction encodes")
}

/// Hand-written cases covering every halt reason, every opcode, both
/// addressing modes, the echoed/malformed fast paths, queue-full drops
/// and wide-counter narrowing. These are the initial committed corpus:
/// each must run divergence-free forever.
// One push per named case keeps each block independently movable;
// clippy would fold them into one 170-line `vec![]` literal.
#[allow(clippy::vec_init_then_push)]
pub fn directed_cases() -> Vec<ConformanceCase> {
    let sram0 = VirtAddr(0x8000);
    let mut cases = Vec::new();

    cases.push(ConformanceCase {
        name: "cexec-halt".into(),
        insns: vec![
            enc(Instruction::Cexec {
                addr: Stat::SwitchId.addr(),
                mem: PacketOperand::Abs(0),
            }),
            enc(Instruction::Nop),
        ],
        memory: vec![0xffff_ffff, 5, 0],
        ..ConformanceCase::default()
    });

    cases.push(ConformanceCase {
        name: "pop-readonly-fault".into(),
        insns: vec![enc(Instruction::Pop {
            addr: Stat::QueueSize.addr(),
        })],
        memory: vec![42],
        sp0: 4,
        ..ConformanceCase::default()
    });

    cases.push(ConformanceCase {
        name: "sram-out-of-range".into(),
        insns: vec![enc(Instruction::Store {
            addr: VirtAddr(0x4000 + 4 * 8),
            src: PacketOperand::Abs(0),
        })],
        memory: vec![1],
        link_sram: vec![0; 8],
        ..ConformanceCase::default()
    });

    cases.push(ConformanceCase {
        name: "bad-instruction".into(),
        insns: vec![enc(Instruction::Nop), 0xf800_0000, enc(Instruction::Nop)],
        ..ConformanceCase::default()
    });

    cases.push(ConformanceCase {
        name: "budget-exhaustion".into(),
        insns: vec![enc(Instruction::Nop); 10],
        budget: 7,
        ..ConformanceCase::default()
    });

    cases.push(ConformanceCase {
        name: "budget-zero".into(),
        insns: vec![enc(Instruction::Nop)],
        budget: 0,
        ..ConformanceCase::default()
    });

    cases.push(ConformanceCase {
        name: "cstore-success-then-miss".into(),
        rounds: 2,
        insns: vec![enc(Instruction::Cstore {
            addr: sram0,
            mem: PacketOperand::Abs(0),
        })],
        memory: vec![0, 5, 0],
        ..ConformanceCase::default()
    });

    cases.push(ConformanceCase {
        name: "hop-mode-walk".into(),
        mode: 1,
        per_hop_words: 2,
        rounds: 3,
        insns: vec![
            enc(Instruction::Load {
                addr: Stat::WallClock.addr(),
                dst: PacketOperand::Hop(0),
            }),
            enc(Instruction::Load {
                addr: Stat::QueueSize.addr(),
                dst: PacketOperand::Hop(1),
            }),
        ],
        memory: vec![0; 8],
        ..ConformanceCase::default()
    });

    cases.push(ConformanceCase {
        name: "echoed-inert".into(),
        flags0: FLAG_ECHOED,
        insns: vec![enc(Instruction::Push {
            addr: Stat::SwitchId.addr(),
        })],
        memory: vec![0],
        ..ConformanceCase::default()
    });

    cases.push(ConformanceCase {
        name: "queue-full-drop".into(),
        queue_limit_bytes: 20,
        insns: vec![enc(Instruction::Push {
            addr: Stat::QueuePacketsDropped.addr(),
        })],
        memory: vec![0],
        ..ConformanceCase::default()
    });

    cases.push(ConformanceCase {
        name: "parse-reject-corrupt-version".into(),
        insns: vec![enc(Instruction::Nop)],
        corrupt: Some((0, 0xff)),
        ..ConformanceCase::default()
    });

    cases.push(ConformanceCase {
        name: "wide-counter-narrow".into(),
        switch_seed: SwitchSeed {
            packets_processed: 0x1_0000_0005,
            ..SwitchSeed::default()
        },
        insns: vec![enc(Instruction::Push {
            addr: Stat::PacketsProcessed.addr(),
        })],
        memory: vec![0],
        ..ConformanceCase::default()
    });

    // One program exercising all twelve opcodes in a single traversal.
    cases.push(ConformanceCase {
        name: "all-opcodes".into(),
        insns: vec![
            enc(Instruction::Nop),
            enc(Instruction::PushImm(1)),
            enc(Instruction::PushImm(2)),
            enc(Instruction::Add),
            enc(Instruction::PushImm(1)),
            enc(Instruction::Sub),
            enc(Instruction::PushImm(3)),
            enc(Instruction::And),
            enc(Instruction::PushImm(4)),
            enc(Instruction::Or),
            enc(Instruction::Push {
                addr: Stat::SwitchId.addr(),
            }),
            enc(Instruction::Pop { addr: sram0 }),
            enc(Instruction::Store {
                addr: VirtAddr(0x8004),
                src: PacketOperand::Abs(0),
            }),
            enc(Instruction::Cstore {
                addr: VirtAddr(0x8008),
                mem: PacketOperand::Abs(1),
            }),
            enc(Instruction::Cexec {
                addr: Stat::SwitchId.addr(),
                mem: PacketOperand::Abs(4),
            }),
            enc(Instruction::Load {
                addr: Stat::BootEpoch.addr(),
                dst: PacketOperand::Abs(6),
            }),
        ],
        memory: vec![0, 0, 0xbeef, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        ..ConformanceCase::default()
    });

    cases
}

// ---------------------------------------------------------------------------
// Minimal JSON (the corpus file format; no external dependencies)
// ---------------------------------------------------------------------------

/// A minimal JSON value: unsigned integers, strings, arrays, objects —
/// exactly what the corpus format needs, hand-rolled because the build
/// environment has no serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// An unsigned integer.
    Num(u64),
    /// A string (simple escapes only: `\"` and `\\`).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Num(n) => out.push_str(&n.to_string()),
            Json::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        _ => out.push(ch),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Number-only arrays stay on one line (SRAM images).
                if items.iter().all(|i| matches!(i, Json::Num(_))) {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, 0);
                    }
                    out.push(']');
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    Json::Str(key.clone()).write(out, 0);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the subset [`Json`] can represent).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A required integer field of an object.
    pub fn u64_field(&self, key: &str) -> Result<u64, String> {
        match self.get(key) {
            Some(Json::Num(n)) => Ok(*n),
            Some(other) => Err(format!("field {key}: expected number, got {other:?}")),
            None => Err(format!("missing field {key}")),
        }
    }

    /// A required array-of-integers field of an object.
    pub fn u32_list(&self, key: &str) -> Result<Vec<u32>, String> {
        match self.get(key) {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|i| match i {
                    Json::Num(n) => Ok(*n as u32),
                    other => Err(format!("field {key}: expected number, got {other:?}")),
                })
                .collect(),
            Some(other) => Err(format!("field {key}: expected array, got {other:?}")),
            None => Err(format!("missing field {key}")),
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(*pos) {
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            other => return Err(format!("unsupported escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&b) => {
                        s.push(b as char);
                        *pos += 1;
                    }
                    None => return Err("unterminated string".to_string()),
                }
            }
        }
        Some(b) if b.is_ascii_digit() => {
            let start = *pos;
            while bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at offset {start}"))
        }
        other => Err(format!("unexpected {other:?} at offset {pos}")),
    }
}

// ---------------------------------------------------------------------------
// Case <-> JSON
// ---------------------------------------------------------------------------

fn num_list(words: &[u32]) -> Json {
    Json::Arr(words.iter().map(|&w| Json::Num(w as u64)).collect())
}

impl ConformanceCase {
    /// Serialize to the corpus JSON format.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("switch_id".to_string(), Json::Num(self.switch_id as u64)),
            ("budget".to_string(), Json::Num(self.budget as u64)),
            ("rounds".to_string(), Json::Num(self.rounds as u64)),
            (
                "queue_limit_bytes".to_string(),
                Json::Num(self.queue_limit_bytes as u64),
            ),
            ("now0_ns".to_string(), Json::Num(self.now0_ns)),
            ("mode".to_string(), Json::Num(self.mode as u64)),
            ("hop0".to_string(), Json::Num(self.hop0 as u64)),
            ("sp0".to_string(), Json::Num(self.sp0 as u64)),
            ("flags0".to_string(), Json::Num(self.flags0 as u64)),
            (
                "per_hop_words".to_string(),
                Json::Num(self.per_hop_words as u64),
            ),
            ("insns".to_string(), num_list(&self.insns)),
            ("memory".to_string(), num_list(&self.memory)),
            ("link_sram".to_string(), num_list(&self.link_sram)),
            ("global_sram".to_string(), num_list(&self.global_sram)),
            (
                "switch_seed".to_string(),
                Json::Obj(vec![
                    (
                        "flow_table_version".to_string(),
                        Json::Num(self.switch_seed.flow_table_version as u64),
                    ),
                    ("l2_hits".to_string(), Json::Num(self.switch_seed.l2_hits)),
                    ("l3_hits".to_string(), Json::Num(self.switch_seed.l3_hits)),
                    (
                        "tcam_hits".to_string(),
                        Json::Num(self.switch_seed.tcam_hits),
                    ),
                    (
                        "packets_processed".to_string(),
                        Json::Num(self.switch_seed.packets_processed),
                    ),
                    (
                        "tpps_executed".to_string(),
                        Json::Num(self.switch_seed.tpps_executed),
                    ),
                    (
                        "boot_epoch".to_string(),
                        Json::Num(self.switch_seed.boot_epoch as u64),
                    ),
                ]),
            ),
            (
                "link_seed".to_string(),
                Json::Obj(vec![
                    ("rx_bytes".to_string(), Json::Num(self.link_seed.rx_bytes)),
                    ("tx_bytes".to_string(), Json::Num(self.link_seed.tx_bytes)),
                    (
                        "rx_packets".to_string(),
                        Json::Num(self.link_seed.rx_packets),
                    ),
                    (
                        "tx_packets".to_string(),
                        Json::Num(self.link_seed.tx_packets),
                    ),
                    (
                        "bytes_dropped".to_string(),
                        Json::Num(self.link_seed.bytes_dropped),
                    ),
                    (
                        "bytes_enqueued".to_string(),
                        Json::Num(self.link_seed.bytes_enqueued),
                    ),
                    (
                        "ecn_marked".to_string(),
                        Json::Num(self.link_seed.ecn_marked),
                    ),
                    (
                        "snr_decidb".to_string(),
                        Json::Num(self.link_seed.snr_decidb as u64),
                    ),
                    (
                        "rx_utilization_permille".to_string(),
                        Json::Num(self.link_seed.rx_utilization_permille as u64),
                    ),
                    (
                        "tx_utilization_permille".to_string(),
                        Json::Num(self.link_seed.tx_utilization_permille as u64),
                    ),
                ]),
            ),
            (
                "queue_seed".to_string(),
                Json::Obj(vec![
                    (
                        "queue_size_bytes".to_string(),
                        Json::Num(self.queue_seed.queue_size_bytes),
                    ),
                    (
                        "bytes_enqueued".to_string(),
                        Json::Num(self.queue_seed.bytes_enqueued),
                    ),
                    (
                        "bytes_dropped".to_string(),
                        Json::Num(self.queue_seed.bytes_dropped),
                    ),
                    (
                        "packets_enqueued".to_string(),
                        Json::Num(self.queue_seed.packets_enqueued),
                    ),
                    (
                        "packets_dropped".to_string(),
                        Json::Num(self.queue_seed.packets_dropped),
                    ),
                    (
                        "high_watermark_bytes".to_string(),
                        Json::Num(self.queue_seed.high_watermark_bytes),
                    ),
                ]),
            ),
        ];
        if let Some((idx, xor)) = self.corrupt {
            fields.push((
                "corrupt".to_string(),
                Json::Arr(vec![Json::Num(idx as u64), Json::Num(xor as u64)]),
            ));
        }
        Json::Obj(fields)
    }

    /// Deserialize from the corpus JSON format.
    pub fn from_json(json: &Json) -> Result<ConformanceCase, String> {
        let name = match json.get("name") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err("missing string field name".to_string()),
        };
        let sw = json.get("switch_seed").ok_or("missing switch_seed")?;
        let li = json.get("link_seed").ok_or("missing link_seed")?;
        let qu = json.get("queue_seed").ok_or("missing queue_seed")?;
        let corrupt = match json.get("corrupt") {
            None => None,
            Some(Json::Arr(items)) if items.len() == 2 => match (&items[0], &items[1]) {
                (Json::Num(idx), Json::Num(xor)) => Some((*idx as usize, *xor as u8)),
                _ => return Err("corrupt must be [index, xor]".to_string()),
            },
            Some(other) => return Err(format!("corrupt must be [index, xor], got {other:?}")),
        };
        Ok(ConformanceCase {
            name,
            switch_id: json.u64_field("switch_id")? as u32,
            budget: json.u64_field("budget")? as u32,
            rounds: json.u64_field("rounds")? as u32,
            queue_limit_bytes: json.u64_field("queue_limit_bytes")? as u32,
            now0_ns: json.u64_field("now0_ns")?,
            mode: json.u64_field("mode")? as u8,
            hop0: json.u64_field("hop0")? as u8,
            sp0: json.u64_field("sp0")? as u16,
            flags0: json.u64_field("flags0")? as u8,
            per_hop_words: json.u64_field("per_hop_words")? as u16,
            insns: json.u32_list("insns")?,
            memory: json.u32_list("memory")?,
            link_sram: json.u32_list("link_sram")?,
            global_sram: json.u32_list("global_sram")?,
            switch_seed: SwitchSeed {
                flow_table_version: sw.u64_field("flow_table_version")? as u32,
                l2_hits: sw.u64_field("l2_hits")?,
                l3_hits: sw.u64_field("l3_hits")?,
                tcam_hits: sw.u64_field("tcam_hits")?,
                packets_processed: sw.u64_field("packets_processed")?,
                tpps_executed: sw.u64_field("tpps_executed")?,
                boot_epoch: sw.u64_field("boot_epoch")? as u32,
            },
            link_seed: LinkSeed {
                rx_bytes: li.u64_field("rx_bytes")?,
                tx_bytes: li.u64_field("tx_bytes")?,
                rx_packets: li.u64_field("rx_packets")?,
                tx_packets: li.u64_field("tx_packets")?,
                bytes_dropped: li.u64_field("bytes_dropped")?,
                bytes_enqueued: li.u64_field("bytes_enqueued")?,
                ecn_marked: li.u64_field("ecn_marked")?,
                snr_decidb: li.u64_field("snr_decidb")? as u32,
                rx_utilization_permille: li.u64_field("rx_utilization_permille")? as u32,
                tx_utilization_permille: li.u64_field("tx_utilization_permille")? as u32,
            },
            queue_seed: QueueSeed {
                queue_size_bytes: qu.u64_field("queue_size_bytes")?,
                bytes_enqueued: qu.u64_field("bytes_enqueued")?,
                bytes_dropped: qu.u64_field("bytes_dropped")?,
                packets_enqueued: qu.u64_field("packets_enqueued")?,
                packets_dropped: qu.u64_field("packets_dropped")?,
                high_watermark_bytes: qu.u64_field("high_watermark_bytes")?,
            },
            corrupt,
        })
    }
}

// ---------------------------------------------------------------------------
// Corpus on disk
// ---------------------------------------------------------------------------

/// The committed corpus directory (`tests/corpus` at the workspace
/// root), resolved at compile time so tests and the bin agree.
pub fn default_corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// Load every `*.json` case from a corpus directory, sorted by file name
/// for deterministic replay order.
pub fn load_corpus(dir: &std::path::Path) -> Result<Vec<(String, ConformanceCase)>, String> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read corpus dir {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut cases = Vec::new();
    for path in paths {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
        let case = ConformanceCase::from_json(&json)
            .map_err(|e| format!("decode {}: {e}", path.display()))?;
        let label = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        cases.push((label, case));
    }
    Ok(cases)
}

/// Write one case as a pretty-printed JSON corpus file.
pub fn write_case(path: &std::path::Path, case: &ConformanceCase) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    std::fs::write(path, case.to_json().pretty())
        .map_err(|e| format!("write {}: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// Fuzz driver (shared by the bin and the tests)
// ---------------------------------------------------------------------------

/// A divergence found by [`fuzz`]: the original case and its greedily
/// minimized form, with the divergence message from the minimized run.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The case as generated.
    pub case: ConformanceCase,
    /// The minimized still-diverging case.
    pub minimized: ConformanceCase,
    /// The divergence description from the minimized case.
    pub error: String,
}

/// Aggregate statistics of a clean fuzz run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FuzzStats {
    /// Cases run.
    pub cases: u64,
    /// Rounds simulated across all cases.
    pub rounds: u64,
    /// Rounds in which the TCPU executed the TPP.
    pub executed_rounds: u64,
    /// Cases that ended in a queue-full drop.
    pub dropped_cases: u64,
}

/// Run `n` generated cases starting at `seed0`. Returns statistics on
/// full agreement or the first (minimized) divergence.
pub fn fuzz(seed0: u64, n: u64) -> Result<FuzzStats, Box<Divergence>> {
    let mut stats = FuzzStats::default();
    for seed in seed0..seed0 + n {
        let case = gen_case(seed);
        match run_case(&case) {
            Ok(summary) => {
                stats.cases += 1;
                stats.rounds += summary.rounds_run as u64;
                stats.executed_rounds += summary.tpp_executed_rounds as u64;
                stats.dropped_cases += summary.dropped as u64;
            }
            Err(_) => {
                let minimized = minimize(&case);
                let error = run_case(&minimized)
                    .err()
                    .unwrap_or_else(|| "minimized case no longer diverges".to_string());
                return Err(Box::new(Divergence {
                    case,
                    minimized,
                    error,
                }));
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_cases_agree() {
        for case in directed_cases() {
            if let Err(e) = run_case(&case) {
                panic!("directed case {} diverged:\n{e}", case.name);
            }
        }
    }

    #[test]
    fn directed_case_names_are_unique() {
        let mut names: Vec<String> = directed_cases().into_iter().map(|c| c.name).collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn json_roundtrip_every_directed_case() {
        for case in directed_cases() {
            let text = case.to_json().pretty();
            let back = ConformanceCase::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, case, "roundtrip of {}", case.name);
        }
    }

    #[test]
    fn json_roundtrip_generated_cases() {
        for seed in 0..50 {
            let case = gen_case(seed);
            let text = case.to_json().pretty();
            let back = ConformanceCase::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, case, "roundtrip of seed {seed}");
        }
    }

    #[test]
    fn json_parser_rejects_malformed() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "{\"a\":1} x", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn minimizer_is_stable_on_agreeing_cases() {
        // A conforming case minimizes to itself (nothing to shrink).
        let case = gen_case(1);
        assert_eq!(minimize(&case), case);
    }

    #[test]
    fn queue_full_case_really_drops() {
        let case = directed_cases()
            .into_iter()
            .find(|c| c.name == "queue-full-drop")
            .unwrap();
        let summary = run_case(&case).unwrap();
        assert!(summary.dropped);
    }

    #[test]
    fn generated_cases_are_deterministic() {
        assert_eq!(gen_case(42), gen_case(42));
        assert_ne!(gen_case(42), gen_case(43));
    }
}
