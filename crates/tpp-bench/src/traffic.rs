//! Seeded traffic-matrix engine for the datacenter FCT benchmark.
//!
//! Flow sizes are drawn from the two empirical datacenter distributions
//! every congestion-control paper since has benchmarked against:
//!
//! * **web-search** — the production cluster of the DCTCP paper
//!   (Alizadeh et al., SIGCOMM'10): a mixed mice/elephant CDF whose
//!   byte count is dominated by a heavy >1 MB tail;
//! * **data-mining** — the VL2 paper (Greenberg et al., SIGCOMM'09):
//!   over 80 % of flows under ~4 KB, with a very long sparse tail.
//!
//! Both are encoded as inverse-CDF breakpoint tables and sampled by
//! linear interpolation, so a uniform `u ∈ [0,1)` maps to a flow size
//! in bytes. The [`FlowGenApp`] host app plays a pre-generated schedule
//! of such flows (open-loop, paced by the NIC) and records
//! flow-completion times at the receiving side; everything is seeded
//! through a splitmix64 stream, so a `(seed, host)` pair always yields
//! the same schedule regardless of shard count or threading.

use tpp_netsim::{HostApp, HostCtx};
use tpp_wire::ethernet::{EtherType, Frame, ETHERNET_HEADER_LEN};
use tpp_wire::EthernetAddress;

/// Ethertype of benchmark data frames (plain, non-TPP traffic).
pub const FCT_ETHERTYPE: EtherType = EtherType(0x0802);

/// Payload bytes per full-size frame (1500 B on the wire with the
/// Ethernet header and the flow metadata header).
pub const FRAME_PAYLOAD: usize = 1486 - META_LEN;

/// Bytes of flow metadata at the start of every benchmark frame.
pub const META_LEN: usize = 24;

const META_MAGIC: u16 = 0xF1C7;
const FLAG_LAST: u8 = 1 << 0;
const FLAG_MINING: u8 = 1 << 1;

/// splitmix64 — the tiny, seedable, statistically solid mixer used for
/// every random draw in the engine (no external RNG dependency).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A splitmix64-sequence RNG: `state` advances by the golden-ratio
/// increment, each output is one mix of it.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Seeded stream; distinct seeds give independent streams.
    pub fn new(seed: u64) -> Self {
        Rng64 {
            state: splitmix64(seed),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        // Multiply-shift; bias is negligible for benchmark-sized n.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Which empirical flow-size CDF a flow draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowSizeDist {
    /// DCTCP web-search workload.
    WebSearch,
    /// VL2 data-mining workload.
    DataMining,
}

/// `(cdf, bytes)` breakpoints; the widely used approximations of the
/// published curves (as shipped with public DCTCP/VL2 simulators).
const WEB_SEARCH_CDF: &[(f64, f64)] = &[
    (0.0, 1_000.0),
    (0.05, 2_000.0),
    (0.10, 3_000.0),
    (0.20, 5_000.0),
    (0.30, 7_000.0),
    (0.40, 10_000.0),
    (0.53, 20_000.0),
    (0.60, 30_000.0),
    (0.70, 50_000.0),
    (0.80, 80_000.0),
    (0.90, 200_000.0),
    (0.97, 1_000_000.0),
    (0.99, 2_000_000.0),
    (1.0, 10_000_000.0),
];

const DATA_MINING_CDF: &[(f64, f64)] = &[
    (0.0, 100.0),
    (0.10, 180.0),
    (0.20, 250.0),
    (0.40, 560.0),
    (0.50, 900.0),
    (0.60, 1_100.0),
    (0.70, 1_870.0),
    (0.80, 3_160.0),
    (0.90, 10_000.0),
    (0.95, 400_000.0),
    (0.98, 3_160_000.0),
    (1.0, 100_000_000.0),
];

impl FlowSizeDist {
    fn table(self) -> &'static [(f64, f64)] {
        match self {
            FlowSizeDist::WebSearch => WEB_SEARCH_CDF,
            FlowSizeDist::DataMining => DATA_MINING_CDF,
        }
    }

    /// Inverse-CDF sample: map uniform `u ∈ [0,1)` to bytes by linear
    /// interpolation between breakpoints.
    pub fn sample_bytes(self, u: f64) -> u64 {
        let t = self.table();
        let u = u.clamp(0.0, 1.0);
        for w in t.windows(2) {
            let (c0, b0) = w[0];
            let (c1, b1) = w[1];
            if u <= c1 {
                let frac = if c1 > c0 { (u - c0) / (c1 - c0) } else { 0.0 };
                return (b0 + frac * (b1 - b0)) as u64;
            }
        }
        t.last().expect("non-empty table").1 as u64
    }
}

/// One scheduled flow of a [`FlowGenApp`].
#[derive(Debug, Clone, Copy)]
pub struct Flow {
    /// Absolute start time, ns.
    pub start_ns: u64,
    /// Destination host MAC.
    pub dst: EthernetAddress,
    /// Flow size, bytes (post scale/cap).
    pub bytes: u32,
    /// Fleet-unique flow key: `src_index << 32 | flow_ordinal`.
    pub key: u64,
    /// Drawn from the data-mining CDF (else web-search).
    pub mining: bool,
}

/// Knobs of the schedule generator.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Master seed; each `(seed, src_index)` pair is an independent
    /// stream.
    pub seed: u64,
    /// Flows generated per source host.
    pub flows_per_host: usize,
    /// Mean inter-arrival gap per host, ns (exponential).
    pub mean_gap_ns: u64,
    /// Sampled sizes are divided by this (tractability knob for the
    /// simulated-byte volume; 1 = the published curves verbatim).
    pub size_scale_div: u64,
    /// Sizes are clamped to `[min_bytes, cap_bytes]` after scaling.
    pub cap_bytes: u64,
    /// Lower clamp, bytes.
    pub min_bytes: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0xFC7_BEEF,
            flows_per_host: 1000,
            mean_gap_ns: 90_000,
            size_scale_div: 16,
            cap_bytes: 64 * 1024,
            min_bytes: 512,
        }
    }
}

/// Generate the seeded flow schedule of one source host. `src_index`
/// indexes `dst_macs` (the flow-generating hosts, including the source
/// itself — self-flows are skipped by drawing from the other entries).
pub fn generate_schedule(
    cfg: &TrafficConfig,
    src_index: u32,
    dst_macs: &[EthernetAddress],
    dist: FlowSizeDist,
) -> Vec<Flow> {
    assert!(
        dst_macs.len() >= 2,
        "need at least one non-self destination"
    );
    let mut rng = Rng64::new(splitmix64(cfg.seed ^ ((src_index as u64) << 1 | 1)));
    let mut t = 0u64;
    let mut out = Vec::with_capacity(cfg.flows_per_host);
    for i in 0..cfg.flows_per_host {
        let gap = -(1.0 - rng.next_f64()).ln() * cfg.mean_gap_ns as f64;
        t += gap as u64;
        let mut j = rng.next_below(dst_macs.len() as u64 - 1) as usize;
        if j >= src_index as usize {
            j += 1;
        }
        let raw = dist.sample_bytes(rng.next_f64());
        let bytes = (raw / cfg.size_scale_div).clamp(cfg.min_bytes, cfg.cap_bytes) as u32;
        out.push(Flow {
            start_ns: t,
            dst: dst_macs[j],
            bytes,
            key: ((src_index as u64) << 32) | i as u64,
            mining: dist == FlowSizeDist::DataMining,
        });
    }
    out
}

/// A completed flow, recorded at the *receiving* host.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// The flow key from the sender's schedule.
    pub key: u64,
    /// Flow size, bytes.
    pub bytes: u32,
    /// Drawn from the data-mining CDF.
    pub mining: bool,
    /// Flow-completion time: last-byte arrival minus scheduled start.
    pub fct_ns: u64,
}

/// Open-loop traffic source + FCT-recording sink, one per benchmark
/// host. Sending is paced by the host NIC (frames of a flow are
/// enqueued back-to-back and serialize at line rate, in order; the
/// single-path L2 fabric preserves ordering), so the final frame's
/// arrival *is* flow completion — the receiver needs no reassembly
/// state, every frame carries its flow metadata.
#[derive(Debug, Default)]
pub struct FlowGenApp {
    schedule: Vec<Flow>,
    next: usize,
    /// Flows whose frames have been handed to the NIC.
    pub flows_started: u64,
    /// Data frames sent.
    pub frames_sent: u64,
    /// Flows that completed *at this host* (i.e. it was the receiver).
    pub completions: Vec<Completion>,
}

impl FlowGenApp {
    /// An app that plays `schedule` (must be sorted by start time).
    pub fn new(schedule: Vec<Flow>) -> Self {
        debug_assert!(schedule.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        FlowGenApp {
            schedule,
            ..Default::default()
        }
    }

    fn send_flow(&mut self, flow: Flow, ctx: &mut HostCtx<'_>) {
        let total = flow.bytes as usize;
        let n_frames = total.div_ceil(FRAME_PAYLOAD).max(1);
        let mut remaining = total;
        for i in 0..n_frames {
            let last = i + 1 == n_frames;
            let body = remaining.min(FRAME_PAYLOAD);
            remaining -= body;
            let len = ETHERNET_HEADER_LEN + META_LEN + body;
            let mut buf = ctx.alloc_frame(len);
            buf.resize(len, 0);
            let mut eth = Frame::new_unchecked(&mut buf[..]);
            eth.set_dst_addr(flow.dst);
            eth.set_src_addr(ctx.mac());
            eth.set_ethertype(FCT_ETHERTYPE);
            let p = eth.payload_mut();
            p[0..2].copy_from_slice(&META_MAGIC.to_be_bytes());
            p[2] = if last { FLAG_LAST } else { 0 } | if flow.mining { FLAG_MINING } else { 0 };
            p[3] = 0;
            p[4..8].copy_from_slice(&flow.bytes.to_be_bytes());
            p[8..16].copy_from_slice(&flow.start_ns.to_be_bytes());
            p[16..24].copy_from_slice(&flow.key.to_be_bytes());
            ctx.send(buf);
            self.frames_sent += 1;
        }
        self.flows_started += 1;
    }

    fn arm(&mut self, ctx: &mut HostCtx<'_>) {
        if let Some(flow) = self.schedule.get(self.next) {
            let delay = flow.start_ns.saturating_sub(ctx.now()).max(1);
            ctx.set_timer(delay, 0);
        }
    }
}

impl HostApp for FlowGenApp {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.arm(ctx);
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut HostCtx<'_>) {
        while self
            .schedule
            .get(self.next)
            .is_some_and(|f| f.start_ns <= ctx.now())
        {
            let flow = self.schedule[self.next];
            self.next += 1;
            self.send_flow(flow, ctx);
        }
        self.arm(ctx);
    }

    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        if frame.len() >= ETHERNET_HEADER_LEN + META_LEN {
            let eth = Frame::new_unchecked(&frame[..]);
            if eth.ethertype() == FCT_ETHERTYPE {
                let p = eth.payload();
                if u16::from_be_bytes([p[0], p[1]]) == META_MAGIC && p[2] & FLAG_LAST != 0 {
                    let bytes = u32::from_be_bytes([p[4], p[5], p[6], p[7]]);
                    let start_ns = u64::from_be_bytes(p[8..16].try_into().expect("8 bytes"));
                    let key = u64::from_be_bytes(p[16..24].try_into().expect("8 bytes"));
                    self.completions.push(Completion {
                        key,
                        bytes,
                        mining: p[2] & FLAG_MINING != 0,
                        fct_ns: ctx.now().saturating_sub(start_ns),
                    });
                }
            }
        }
        ctx.recycle_frame(frame);
    }
}

/// Order-independent fingerprint of a set of completions: commutative
/// accumulation of a mix of each `(key, fct_ns)` pair, so the value is
/// identical for any shard count, thread interleaving, or host
/// iteration order that delivers the same flows at the same times.
pub fn completions_fingerprint(completions: impl Iterator<Item = Completion>) -> u64 {
    let mut acc = 0u64;
    for c in completions {
        acc = acc.wrapping_add(splitmix64(c.key ^ c.fct_ns.rotate_left(17)));
    }
    acc
}

/// `p`-th percentile (0..=1) of an ascending-sorted slice; NaN if empty.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_tables_are_monotone() {
        for t in [WEB_SEARCH_CDF, DATA_MINING_CDF] {
            assert!(t.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
            assert_eq!(t[0].0, 0.0);
            assert_eq!(t.last().unwrap().0, 1.0);
        }
    }

    #[test]
    fn sampling_interpolates_and_is_bounded() {
        for dist in [FlowSizeDist::WebSearch, FlowSizeDist::DataMining] {
            let lo = dist.table()[0].1 as u64;
            let hi = dist.table().last().unwrap().1 as u64;
            let mut rng = Rng64::new(7);
            let mut prev = 0;
            for _ in 0..1000 {
                let b = dist.sample_bytes(rng.next_f64());
                assert!((lo..=hi).contains(&b), "{b} outside [{lo}, {hi}]");
                prev = prev.max(b);
            }
            assert!(prev > lo, "tail never sampled");
        }
        // Median of web-search sits in the 10–20 KB breakpoint span.
        let med = FlowSizeDist::WebSearch.sample_bytes(0.5);
        assert!((10_000..20_000).contains(&med), "median {med}");
    }

    #[test]
    fn schedules_are_seed_deterministic_and_skip_self() {
        let macs: Vec<EthernetAddress> = (0..8).map(EthernetAddress::from_host_id).collect();
        let cfg = TrafficConfig {
            flows_per_host: 200,
            ..Default::default()
        };
        let a = generate_schedule(&cfg, 3, &macs, FlowSizeDist::WebSearch);
        let b = generate_schedule(&cfg, 3, &macs, FlowSizeDist::WebSearch);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.start_ns, x.dst, x.bytes, x.key),
                (y.start_ns, y.dst, y.bytes, y.key)
            );
        }
        assert!(a.iter().all(|f| f.dst != macs[3]), "self-flow generated");
        assert!(a.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        let c = generate_schedule(&cfg, 4, &macs, FlowSizeDist::WebSearch);
        assert!(a.iter().zip(&c).any(|(x, y)| x.bytes != y.bytes));
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let mk = |key, fct_ns| Completion {
            key,
            bytes: 1,
            mining: false,
            fct_ns,
        };
        let fwd = completions_fingerprint([mk(1, 10), mk(2, 20), mk(3, 30)].into_iter());
        let rev = completions_fingerprint([mk(3, 30), mk(1, 10), mk(2, 20)].into_iter());
        assert_eq!(fwd, rev);
        let other = completions_fingerprint([mk(3, 31), mk(1, 10), mk(2, 20)].into_iter());
        assert_ne!(fwd, other);
    }

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert!(percentile(&[], 0.5).is_nan());
    }
}
