//! Seeded traffic-matrix engine for the datacenter FCT benchmark.
//!
//! Flow sizes are drawn from the two empirical datacenter distributions
//! every congestion-control paper since has benchmarked against:
//!
//! * **web-search** — the production cluster of the DCTCP paper
//!   (Alizadeh et al., SIGCOMM'10): a mixed mice/elephant CDF whose
//!   byte count is dominated by a heavy >1 MB tail;
//! * **data-mining** — the VL2 paper (Greenberg et al., SIGCOMM'09):
//!   over 80 % of flows under ~4 KB, with a very long sparse tail.
//!
//! Both are encoded as inverse-CDF breakpoint tables and sampled by
//! linear interpolation, so a uniform `u ∈ [0,1)` maps to a flow size
//! in bytes. The [`FlowGenApp`] host app plays a pre-generated schedule
//! of such flows (open-loop, paced by the NIC) and records
//! flow-completion times at the receiving side; everything is seeded
//! through a splitmix64 stream, so a `(seed, host)` pair always yields
//! the same schedule regardless of shard count or threading.

use std::collections::BTreeMap;

use tpp_apps::{decode_rate_echo, rate_collect_probe, rate_probe_payload, RateEcho};
use tpp_host::transport::{
    self, segments_for, AckOutcome, FlowReceiver, FlowSender, RtoOutcome, SegmentHdr,
    TransportConfig, TransportStats, TRANSPORT_ETHERTYPE,
};
use tpp_host::{echo_reply, ProbeBuilder, DATA_ETHERTYPE};
use tpp_netsim::{HostApp, HostCtx};
use tpp_wire::ethernet::{EtherType, Frame, ETHERNET_HEADER_LEN};
use tpp_wire::EthernetAddress;

/// Ethertype of benchmark data frames (plain, non-TPP traffic).
pub const FCT_ETHERTYPE: EtherType = EtherType(0x0802);

/// Payload bytes per full-size frame (1500 B on the wire with the
/// Ethernet header and the flow metadata header).
pub const FRAME_PAYLOAD: usize = 1486 - META_LEN;

/// Bytes of flow metadata at the start of every benchmark frame.
pub const META_LEN: usize = 24;

const META_MAGIC: u16 = 0xF1C7;
const FLAG_LAST: u8 = 1 << 0;
const FLAG_MINING: u8 = 1 << 1;

/// splitmix64 — the tiny, seedable, statistically solid mixer used for
/// every random draw in the engine (no external RNG dependency).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A splitmix64-sequence RNG: `state` advances by the golden-ratio
/// increment, each output is one mix of it.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Seeded stream; distinct seeds give independent streams.
    pub fn new(seed: u64) -> Self {
        Rng64 {
            state: splitmix64(seed),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        // Multiply-shift; bias is negligible for benchmark-sized n.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Which empirical flow-size CDF a flow draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowSizeDist {
    /// DCTCP web-search workload.
    WebSearch,
    /// VL2 data-mining workload.
    DataMining,
}

/// `(cdf, bytes)` breakpoints; the widely used approximations of the
/// published curves (as shipped with public DCTCP/VL2 simulators).
const WEB_SEARCH_CDF: &[(f64, f64)] = &[
    (0.0, 1_000.0),
    (0.05, 2_000.0),
    (0.10, 3_000.0),
    (0.20, 5_000.0),
    (0.30, 7_000.0),
    (0.40, 10_000.0),
    (0.53, 20_000.0),
    (0.60, 30_000.0),
    (0.70, 50_000.0),
    (0.80, 80_000.0),
    (0.90, 200_000.0),
    (0.97, 1_000_000.0),
    (0.99, 2_000_000.0),
    (1.0, 10_000_000.0),
];

const DATA_MINING_CDF: &[(f64, f64)] = &[
    (0.0, 100.0),
    (0.10, 180.0),
    (0.20, 250.0),
    (0.40, 560.0),
    (0.50, 900.0),
    (0.60, 1_100.0),
    (0.70, 1_870.0),
    (0.80, 3_160.0),
    (0.90, 10_000.0),
    (0.95, 400_000.0),
    (0.98, 3_160_000.0),
    (1.0, 100_000_000.0),
];

impl FlowSizeDist {
    fn table(self) -> &'static [(f64, f64)] {
        match self {
            FlowSizeDist::WebSearch => WEB_SEARCH_CDF,
            FlowSizeDist::DataMining => DATA_MINING_CDF,
        }
    }

    /// Inverse-CDF sample: map uniform `u ∈ [0,1)` to bytes by linear
    /// interpolation between breakpoints.
    pub fn sample_bytes(self, u: f64) -> u64 {
        let t = self.table();
        let u = u.clamp(0.0, 1.0);
        for w in t.windows(2) {
            let (c0, b0) = w[0];
            let (c1, b1) = w[1];
            if u <= c1 {
                let frac = if c1 > c0 { (u - c0) / (c1 - c0) } else { 0.0 };
                return (b0 + frac * (b1 - b0)) as u64;
            }
        }
        t.last().expect("non-empty table").1 as u64
    }
}

/// One scheduled flow of a [`FlowGenApp`].
#[derive(Debug, Clone, Copy)]
pub struct Flow {
    /// Absolute start time, ns.
    pub start_ns: u64,
    /// Destination host MAC.
    pub dst: EthernetAddress,
    /// Flow size, bytes (post scale/cap).
    pub bytes: u32,
    /// Fleet-unique flow key: `src_index << 32 | flow_ordinal`.
    pub key: u64,
    /// Drawn from the data-mining CDF (else web-search).
    pub mining: bool,
}

/// Knobs of the schedule generator.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Master seed; each `(seed, src_index)` pair is an independent
    /// stream.
    pub seed: u64,
    /// Flows generated per source host.
    pub flows_per_host: usize,
    /// Mean inter-arrival gap per host, ns (exponential).
    pub mean_gap_ns: u64,
    /// Sampled sizes are divided by this (tractability knob for the
    /// simulated-byte volume; 1 = the published curves verbatim).
    pub size_scale_div: u64,
    /// Sizes are clamped to `[min_bytes, cap_bytes]` after scaling.
    pub cap_bytes: u64,
    /// Lower clamp, bytes.
    pub min_bytes: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0xFC7_BEEF,
            flows_per_host: 1000,
            mean_gap_ns: 90_000,
            size_scale_div: 16,
            cap_bytes: 64 * 1024,
            min_bytes: 512,
        }
    }
}

/// Generate the seeded flow schedule of one source host. `src_index`
/// indexes `dst_macs` (the flow-generating hosts, including the source
/// itself — self-flows are skipped by drawing from the other entries).
pub fn generate_schedule(
    cfg: &TrafficConfig,
    src_index: u32,
    dst_macs: &[EthernetAddress],
    dist: FlowSizeDist,
) -> Vec<Flow> {
    assert!(
        dst_macs.len() >= 2,
        "need at least one non-self destination"
    );
    let mut rng = Rng64::new(splitmix64(cfg.seed ^ ((src_index as u64) << 1 | 1)));
    let mut t = 0u64;
    let mut out = Vec::with_capacity(cfg.flows_per_host);
    for i in 0..cfg.flows_per_host {
        let gap = -(1.0 - rng.next_f64()).ln() * cfg.mean_gap_ns as f64;
        t += gap as u64;
        let mut j = rng.next_below(dst_macs.len() as u64 - 1) as usize;
        if j >= src_index as usize {
            j += 1;
        }
        let raw = dist.sample_bytes(rng.next_f64());
        let bytes = (raw / cfg.size_scale_div).clamp(cfg.min_bytes, cfg.cap_bytes) as u32;
        out.push(Flow {
            start_ns: t,
            dst: dst_macs[j],
            bytes,
            key: ((src_index as u64) << 32) | i as u64,
            mining: dist == FlowSizeDist::DataMining,
        });
    }
    out
}

/// A completed flow, recorded at the *receiving* host.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// The flow key from the sender's schedule.
    pub key: u64,
    /// Flow size, bytes.
    pub bytes: u32,
    /// Drawn from the data-mining CDF.
    pub mining: bool,
    /// Flow-completion time: last-byte arrival minus scheduled start.
    pub fct_ns: u64,
}

/// Open-loop traffic source + FCT-recording sink, one per benchmark
/// host. Sending is paced by the host NIC (frames of a flow are
/// enqueued back-to-back and serialize at line rate, in order; the
/// single-path L2 fabric preserves ordering), so the final frame's
/// arrival *is* flow completion — the receiver needs no reassembly
/// state, every frame carries its flow metadata.
#[derive(Debug, Default)]
pub struct FlowGenApp {
    schedule: Vec<Flow>,
    next: usize,
    /// Flows whose frames have been handed to the NIC.
    pub flows_started: u64,
    /// Data frames sent.
    pub frames_sent: u64,
    /// Flows that completed *at this host* (i.e. it was the receiver).
    pub completions: Vec<Completion>,
}

impl FlowGenApp {
    /// An app that plays `schedule` (must be sorted by start time).
    pub fn new(schedule: Vec<Flow>) -> Self {
        debug_assert!(schedule.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        FlowGenApp {
            schedule,
            ..Default::default()
        }
    }

    fn send_flow(&mut self, flow: Flow, ctx: &mut HostCtx<'_>) {
        let total = flow.bytes as usize;
        let n_frames = total.div_ceil(FRAME_PAYLOAD).max(1);
        let mut remaining = total;
        for i in 0..n_frames {
            let last = i + 1 == n_frames;
            let body = remaining.min(FRAME_PAYLOAD);
            remaining -= body;
            let len = ETHERNET_HEADER_LEN + META_LEN + body;
            let mut buf = ctx.alloc_frame(len);
            buf.resize(len, 0);
            let mut eth = Frame::new_unchecked(&mut buf[..]);
            eth.set_dst_addr(flow.dst);
            eth.set_src_addr(ctx.mac());
            eth.set_ethertype(FCT_ETHERTYPE);
            let p = eth.payload_mut();
            p[0..2].copy_from_slice(&META_MAGIC.to_be_bytes());
            p[2] = if last { FLAG_LAST } else { 0 } | if flow.mining { FLAG_MINING } else { 0 };
            p[3] = 0;
            p[4..8].copy_from_slice(&flow.bytes.to_be_bytes());
            p[8..16].copy_from_slice(&flow.start_ns.to_be_bytes());
            p[16..24].copy_from_slice(&flow.key.to_be_bytes());
            ctx.send(buf);
            self.frames_sent += 1;
        }
        self.flows_started += 1;
    }

    fn arm(&mut self, ctx: &mut HostCtx<'_>) {
        if let Some(flow) = self.schedule.get(self.next) {
            let delay = flow.start_ns.saturating_sub(ctx.now()).max(1);
            ctx.set_timer(delay, 0);
        }
    }
}

impl HostApp for FlowGenApp {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.arm(ctx);
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut HostCtx<'_>) {
        while self
            .schedule
            .get(self.next)
            .is_some_and(|f| f.start_ns <= ctx.now())
        {
            let flow = self.schedule[self.next];
            self.next += 1;
            self.send_flow(flow, ctx);
        }
        self.arm(ctx);
    }

    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        if frame.len() >= ETHERNET_HEADER_LEN + META_LEN {
            let eth = Frame::new_unchecked(&frame[..]);
            if eth.ethertype() == FCT_ETHERTYPE {
                let p = eth.payload();
                if u16::from_be_bytes([p[0], p[1]]) == META_MAGIC && p[2] & FLAG_LAST != 0 {
                    let bytes = u32::from_be_bytes([p[4], p[5], p[6], p[7]]);
                    let start_ns = u64::from_be_bytes(p[8..16].try_into().expect("8 bytes"));
                    let key = u64::from_be_bytes(p[16..24].try_into().expect("8 bytes"));
                    self.completions.push(Completion {
                        key,
                        bytes,
                        mining: p[2] & FLAG_MINING != 0,
                        fct_ns: ctx.now().saturating_sub(start_ns),
                    });
                }
            }
        }
        ctx.recycle_frame(frame);
    }
}

/// Knobs of the closed-loop traffic driver ([`ClosedFlowGenApp`]).
#[derive(Debug, Clone)]
pub struct ClosedLoopConfig {
    /// Transport tuning shared by every flow (sender *and* receiver
    /// sides must agree on `mss`).
    pub transport: TransportConfig,
    /// Per-flow rate-probe period, ns. A collect probe is sent at flow
    /// start and then every period while the flow is outstanding.
    pub probe_period_ns: u64,
    /// Hop budget compiled into the collect probe (packet memory is
    /// sized for this many switches on the path).
    pub probe_hops: usize,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        ClosedLoopConfig {
            transport: TransportConfig::default(),
            probe_period_ns: 200_000,
            probe_hops: 5,
        }
    }
}

/// Sender-side state of one outstanding closed-loop flow.
#[derive(Debug)]
struct FlowState {
    dst: EthernetAddress,
    sender: FlowSender,
    next_probe_ns: u64,
}

/// Closed-loop traffic source + sink: the same seeded [`Flow`] schedule
/// as [`FlowGenApp`], but every flow runs through the loss-recovering
/// `tpp-host` transport ([`FlowSender`]/[`FlowReceiver`]) instead of
/// being blasted open-loop. Each active flow also sends periodic TPP
/// collect probes ([`rate_collect_probe`]); the echoed registers clamp
/// the window to the path's RCP\* rate and carry switch boot epochs, so
/// a reboot observed in-band resets the window state
/// (`on_path_epoch_change`) — the paper's mechanism, no oracle.
///
/// All per-flow state lives in `BTreeMap`s and the single service timer
/// wakes at the earliest of (next scheduled start, earliest RTO,
/// earliest probe), so behavior is a pure function of the frame/timer
/// sequence the simulator delivers — bit-identical at any shard count.
pub struct ClosedFlowGenApp {
    schedule: Vec<Flow>,
    next: usize,
    cfg: ClosedLoopConfig,
    probe: ProbeBuilder,
    active: BTreeMap<u64, FlowState>,
    receivers: BTreeMap<u64, FlowReceiver>,
    switch_epochs: BTreeMap<u32, u32>,
    /// Earliest pending service-timer deadline (dedup so bursts of
    /// events do not arm redundant timers).
    armed_at: u64,
    /// Aggregate transport counters of flows this host *finished*
    /// (sender side); use [`ClosedFlowGenApp::stats_snapshot`] to also
    /// fold in still-active flows.
    pub stats: TransportStats,
    /// Flows that completed *at this host* (i.e. it was the receiver).
    pub completions: Vec<Completion>,
}

impl ClosedFlowGenApp {
    /// An app that plays `schedule` (sorted by start time) through the
    /// closed-loop transport.
    pub fn new(schedule: Vec<Flow>, cfg: ClosedLoopConfig) -> Self {
        debug_assert!(schedule.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        let probe = rate_collect_probe(cfg.probe_hops);
        ClosedFlowGenApp {
            schedule,
            next: 0,
            cfg,
            probe,
            active: BTreeMap::new(),
            receivers: BTreeMap::new(),
            switch_epochs: BTreeMap::new(),
            armed_at: 0,
            stats: TransportStats::default(),
            completions: Vec::new(),
        }
    }

    /// [`Self::stats`] plus the counters of flows still in flight.
    pub fn stats_snapshot(&self) -> TransportStats {
        let mut s = self.stats;
        for st in self.active.values() {
            s.absorb_sender(&st.sender);
        }
        s
    }

    /// Flows not yet fully acknowledged (scheduled-but-unstarted plus
    /// in-flight).
    pub fn unfinished(&self) -> usize {
        (self.schedule.len() - self.next) + self.active.len()
    }

    /// Put every sendable segment of `st` on the wire.
    fn pump(st: &mut FlowState, stats: &mut TransportStats, ctx: &mut HostCtx<'_>) {
        let now = ctx.now();
        let mac = ctx.mac();
        while let Some(seg) = st.sender.poll_send(now) {
            let hdr = st.sender.data_hdr(seg, now);
            ctx.send(hdr.into_frame(st.dst, mac));
            stats.segments_sent += 1;
        }
    }

    /// Start due flows, fire due RTOs, send due probes, pump windows,
    /// re-arm the timer.
    fn service(&mut self, ctx: &mut HostCtx<'_>) {
        let now = ctx.now();
        while self
            .schedule
            .get(self.next)
            .is_some_and(|f| f.start_ns <= now)
        {
            let f = self.schedule[self.next];
            self.next += 1;
            let sender = FlowSender::new(
                self.cfg.transport.clone(),
                f.key,
                f.bytes,
                f.mining,
                f.start_ns,
            );
            self.stats.flows_started += 1;
            self.active.insert(
                f.key,
                FlowState {
                    dst: f.dst,
                    sender,
                    next_probe_ns: now,
                },
            );
        }
        let mut dead: Vec<u64> = Vec::new();
        for (key, st) in self.active.iter_mut() {
            if st.sender.rto_deadline().is_some_and(|d| d <= now)
                && st.sender.on_rto(now) == RtoOutcome::GaveUp
            {
                dead.push(*key);
                continue;
            }
            if st.next_probe_ns <= now {
                let payload = rate_probe_payload(*key, now);
                let frame = self.probe.build_frame_with_payload(
                    st.dst,
                    ctx.mac(),
                    &payload,
                    DATA_ETHERTYPE.0,
                );
                ctx.send(frame);
                self.stats.probes_sent += 1;
                st.next_probe_ns = now + self.cfg.probe_period_ns.max(1);
            }
            Self::pump(st, &mut self.stats, ctx);
        }
        for key in dead {
            let st = self.active.remove(&key).expect("key collected above");
            self.stats.flows_given_up += 1;
            self.stats.absorb_sender(&st.sender);
        }
        self.arm(ctx);
    }

    /// Arm the service timer at the earliest pending deadline, if that
    /// is earlier than whatever is already armed.
    fn arm(&mut self, ctx: &mut HostCtx<'_>) {
        let mut wake = u64::MAX;
        if let Some(f) = self.schedule.get(self.next) {
            wake = wake.min(f.start_ns);
        }
        for st in self.active.values() {
            if let Some(d) = st.sender.rto_deadline() {
                wake = wake.min(d);
            }
            wake = wake.min(st.next_probe_ns);
        }
        if wake == u64::MAX {
            return;
        }
        let now = ctx.now();
        if self.armed_at > now && self.armed_at <= wake {
            return; // an earlier-or-equal timer is already pending
        }
        self.armed_at = wake.max(now + 1);
        ctx.set_timer(wake.saturating_sub(now).max(1), 0);
    }

    /// A data segment arrived: deliver, ACK (including tombstone
    /// re-ACKs for completed flows), and record the FCT on completion.
    fn on_data(&mut self, hdr: &SegmentHdr, src: EthernetAddress, ctx: &mut HostCtx<'_>) {
        let total_segs = segments_for(hdr.total_bytes, self.cfg.transport.mss);
        let rx = self
            .receivers
            .entry(hdr.key)
            .or_insert_with(|| FlowReceiver::new(total_segs));
        let out = rx.on_data(hdr.seq, ctx.now());
        if out.duplicate {
            self.stats.dup_segments_rx += 1;
        }
        let ack = rx.ack_hdr(hdr);
        ctx.send(ack.into_frame(src, ctx.mac()));
        self.stats.acks_sent += 1;
        if out.complete && out.delivered > 0 {
            self.completions.push(Completion {
                key: hdr.key,
                bytes: hdr.total_bytes,
                mining: hdr.flags & transport::FLAG_MINING != 0,
                fct_ns: ctx.now().saturating_sub(hdr.start_ns),
            });
        }
    }

    /// An ACK arrived for one of our flows.
    fn on_ack_frame(&mut self, hdr: &SegmentHdr, ctx: &mut HostCtx<'_>) {
        let outcome = match self.active.get_mut(&hdr.key) {
            Some(st) => st.sender.on_ack(hdr.ack, hdr.seq, hdr.ts, ctx.now()),
            None => return,
        };
        match outcome {
            AckOutcome::Completed => {
                let st = self.active.remove(&hdr.key).expect("looked up above");
                self.stats.flows_completed += 1;
                self.stats.absorb_sender(&st.sender);
            }
            AckOutcome::Advanced | AckOutcome::Duplicate => {
                let st = self.active.get_mut(&hdr.key).expect("looked up above");
                Self::pump(st, &mut self.stats, ctx);
            }
            AckOutcome::Ignored => {}
        }
        self.arm(ctx);
    }

    /// A rate-probe echo came back: clamp the flow's window to the
    /// in-band bottleneck rate and react to switch boot-epoch changes.
    fn on_rate_echo(&mut self, echo: RateEcho, ctx: &mut HostCtx<'_>) {
        let mut epoch_changed = false;
        for (sid, ep) in &echo.epochs {
            if let Some(prev) = self.switch_epochs.insert(*sid, *ep) {
                if prev != *ep {
                    epoch_changed = true;
                }
            }
        }
        if epoch_changed {
            // A switch on some path rebooted: in-flight rate clamps may
            // describe a path that no longer exists, so reset every
            // active flow's window (shared fabric, coarse but safe).
            for st in self.active.values_mut() {
                st.sender.on_path_epoch_change();
            }
        }
        if let Some(st) = self.active.get_mut(&echo.key) {
            st.sender.set_rate_bps(echo.rate_bps);
            Self::pump(st, &mut self.stats, ctx);
        }
        self.arm(ctx);
    }
}

impl HostApp for ClosedFlowGenApp {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.arm(ctx);
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut HostCtx<'_>) {
        self.armed_at = 0;
        self.service(ctx);
    }

    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        let Ok(eth) = Frame::new_checked(&frame[..]) else {
            ctx.recycle_frame(frame);
            return;
        };
        if eth.ethertype() == TRANSPORT_ETHERTYPE {
            if let Some(hdr) = SegmentHdr::decode(eth.payload()) {
                let src = eth.src_addr();
                match hdr.kind {
                    transport::KIND_DATA => self.on_data(&hdr, src, ctx),
                    transport::KIND_ACK => self.on_ack_frame(&hdr, ctx),
                    _ => {}
                }
            }
            ctx.recycle_frame(frame);
            return;
        }
        if let Some(echo) = decode_rate_echo(&frame, ctx.mac()) {
            self.on_rate_echo(echo, ctx);
        } else if let Some(reply) = echo_reply(&frame, ctx.mac()) {
            // Receiver role: reflect executed probes back out of the
            // NIC they arrived on (§2.2 Phase 1).
            ctx.send_on(ctx.rx_port(), reply);
        }
        ctx.recycle_frame(frame);
    }
}

/// Order-independent fingerprint of a set of completions: commutative
/// accumulation of a mix of each `(key, fct_ns)` pair, so the value is
/// identical for any shard count, thread interleaving, or host
/// iteration order that delivers the same flows at the same times.
pub fn completions_fingerprint(completions: impl Iterator<Item = Completion>) -> u64 {
    let mut acc = 0u64;
    for c in completions {
        acc = acc.wrapping_add(splitmix64(c.key ^ c.fct_ns.rotate_left(17)));
    }
    acc
}

/// `p`-th percentile (0..=1) of an ascending-sorted slice; NaN if empty.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_tables_are_monotone() {
        for t in [WEB_SEARCH_CDF, DATA_MINING_CDF] {
            assert!(t.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
            assert_eq!(t[0].0, 0.0);
            assert_eq!(t.last().unwrap().0, 1.0);
        }
    }

    #[test]
    fn sampling_interpolates_and_is_bounded() {
        for dist in [FlowSizeDist::WebSearch, FlowSizeDist::DataMining] {
            let lo = dist.table()[0].1 as u64;
            let hi = dist.table().last().unwrap().1 as u64;
            let mut rng = Rng64::new(7);
            let mut prev = 0;
            for _ in 0..1000 {
                let b = dist.sample_bytes(rng.next_f64());
                assert!((lo..=hi).contains(&b), "{b} outside [{lo}, {hi}]");
                prev = prev.max(b);
            }
            assert!(prev > lo, "tail never sampled");
        }
        // Median of web-search sits in the 10–20 KB breakpoint span.
        let med = FlowSizeDist::WebSearch.sample_bytes(0.5);
        assert!((10_000..20_000).contains(&med), "median {med}");
    }

    #[test]
    fn schedules_are_seed_deterministic_and_skip_self() {
        let macs: Vec<EthernetAddress> = (0..8).map(EthernetAddress::from_host_id).collect();
        let cfg = TrafficConfig {
            flows_per_host: 200,
            ..Default::default()
        };
        let a = generate_schedule(&cfg, 3, &macs, FlowSizeDist::WebSearch);
        let b = generate_schedule(&cfg, 3, &macs, FlowSizeDist::WebSearch);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.start_ns, x.dst, x.bytes, x.key),
                (y.start_ns, y.dst, y.bytes, y.key)
            );
        }
        assert!(a.iter().all(|f| f.dst != macs[3]), "self-flow generated");
        assert!(a.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        let c = generate_schedule(&cfg, 4, &macs, FlowSizeDist::WebSearch);
        assert!(a.iter().zip(&c).any(|(x, y)| x.bytes != y.bytes));
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let mk = |key, fct_ns| Completion {
            key,
            bytes: 1,
            mining: false,
            fct_ns,
        };
        let fwd = completions_fingerprint([mk(1, 10), mk(2, 20), mk(3, 30)].into_iter());
        let rev = completions_fingerprint([mk(3, 30), mk(1, 10), mk(2, 20)].into_iter());
        assert_eq!(fwd, rev);
        let other = completions_fingerprint([mk(3, 31), mk(1, 10), mk(2, 20)].into_iter());
        assert_ne!(fwd, other);
    }

    #[test]
    fn closed_loop_recovers_over_lossy_link() {
        use tpp_asic::AsicConfig;
        use tpp_netsim::{time, Endpoint, NetworkBuilder, RunLimit};

        let macs: Vec<EthernetAddress> = (0..2).map(EthernetAddress::from_host_id).collect();
        let mk = |src: u32| {
            let flows = vec![Flow {
                start_ns: time::micros(10),
                dst: macs[1 - src as usize],
                bytes: 40_000,
                key: (src as u64) << 32,
                mining: false,
            }];
            Box::new(ClosedFlowGenApp::new(flows, ClosedLoopConfig::default()))
        };
        let mut net = NetworkBuilder::new();
        let s = net.add_switch(AsicConfig::with_ports(1, 2));
        let h0 = net.add_host(mk(0), 1_000_000);
        let h1 = net.add_host(mk(1), 1_000_000);
        net.connect(Endpoint::host(h0), Endpoint::switch(s, 0), time::micros(1));
        net.connect(Endpoint::host(h1), Endpoint::switch(s, 1), time::micros(1));
        let mut sim = net.build();
        sim.populate_l2();
        // 5% loss in both directions switch->host: data AND acks drop.
        sim.set_link_loss(Endpoint::switch(s, 0), 50);
        sim.set_link_loss(Endpoint::switch(s, 1), 50);
        sim.run(RunLimit::Until(time::millis(800)));

        for h in [h0, h1] {
            let app = sim.host_app::<ClosedFlowGenApp>(h);
            assert_eq!(app.completions.len(), 1, "host {h:?} flow incomplete");
            assert_eq!(app.unfinished(), 0);
            let stats = app.stats_snapshot();
            assert_eq!(stats.flows_started, 1);
            assert_eq!(stats.flows_completed, 1);
            assert_eq!(stats.flows_given_up, 0);
            assert!(stats.retransmits > 0, "5% loss must force retransmits");
            assert!(stats.probes_sent > 0);
        }
        // Receiver-side exactly-once: delivered byte totals match.
        let c = &sim.host_app::<ClosedFlowGenApp>(h1).completions[0];
        assert_eq!(c.bytes, 40_000);
        assert!(c.fct_ns > 0);
    }

    #[test]
    fn closed_loop_is_deterministic() {
        use tpp_asic::AsicConfig;
        use tpp_netsim::{time, Endpoint, NetworkBuilder, RunLimit};

        let run = || {
            let macs: Vec<EthernetAddress> = (0..2).map(EthernetAddress::from_host_id).collect();
            let cfg = TrafficConfig {
                flows_per_host: 20,
                mean_gap_ns: 30_000,
                ..Default::default()
            };
            let mut net = NetworkBuilder::new();
            let s = net.add_switch(AsicConfig::with_ports(1, 2));
            for src in 0..2u32 {
                let sched = generate_schedule(&cfg, src, &macs, FlowSizeDist::WebSearch);
                net.add_host(
                    Box::new(ClosedFlowGenApp::new(sched, ClosedLoopConfig::default())),
                    1_000_000,
                );
            }
            net.connect(
                Endpoint::host(tpp_netsim::HostId(0)),
                Endpoint::switch(s, 0),
                time::micros(1),
            );
            net.connect(
                Endpoint::host(tpp_netsim::HostId(1)),
                Endpoint::switch(s, 1),
                time::micros(1),
            );
            let mut sim = net.build();
            sim.populate_l2();
            sim.set_link_loss(Endpoint::switch(s, 0), 20);
            sim.set_link_loss(Endpoint::switch(s, 1), 20);
            sim.run(RunLimit::Until(time::millis(400)));
            let mut fp = 0u64;
            for h in [tpp_netsim::HostId(0), tpp_netsim::HostId(1)] {
                let app = sim.host_app::<ClosedFlowGenApp>(h);
                fp = fp.wrapping_add(completions_fingerprint(app.completions.iter().copied()));
                fp ^= splitmix64(app.stats_snapshot().retransmits);
            }
            fp
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert!(percentile(&[], 0.5).is_nan());
    }
}
