//! The seeded microburst scenario behind `tpp-top` and the obs goldens.
//!
//! A 2-leaf × 2-spine fabric; host 0 runs the §2.1 [`MicroburstMonitor`]
//! probing the victim host across the fabric while two bursters incast
//! it, building a queue at the victim leaf's egress port. Every switch
//! runs the dataplane profiler (sample-every-packet) and the simulator
//! records ring series, so one run exercises the whole observability
//! plane: stage latencies, budget violations under queueing, series
//! peaks, and the collector's divergence check — which must come out
//! exact, because the run is lossless and fully drained.
//!
//! Everything is deterministic (seeded reservoirs, discrete-event time,
//! no wall clock), so [`run_obs_scenario`]'s rendered artifacts can be
//! pinned as golden files in CI.

use tpp_apps::{detect_bursts, MicroburstMonitor};
use tpp_asic::ProfileConfig;
use tpp_host::EchoReceiver;
use tpp_netsim::{
    leaf_spine, time, HostApp, HostCtx, HostId, LeafSpine, LeafSpineParams, RunLimit, Simulator,
};
use tpp_obs::{prometheus_snapshot, render_top, series_jsonl, Collector};
use tpp_telemetry::MetricsRegistry;
use tpp_wire::ethernet::{build_frame, EtherType};
use tpp_wire::EthernetAddress;

/// Probe interval (one probe per ~RTT).
pub const PROBE_INTERVAL_NS: u64 = 10_000;
/// The burst window start.
pub const BURST_START_NS: u64 = 200_000;
/// The burst window end.
pub const BURST_END_NS: u64 = 600_000;
/// Monitor keeps probing well past the burst so the final samples see
/// drained queues (the ~50 KB backlog takes ~400 µs to drain at
/// 1 Gb/s, emptying around t=1.05 ms).
pub const PROBE_STOP_NS: u64 = 1_300_000;
/// Upper bound for the run (the scenario quiesces much earlier).
pub const SCENARIO_END_NS: u64 = 3_000_000;

/// A host incasting fixed-size data frames at a victim during
/// `[start_ns, stop_ns)`.
struct Burster {
    target: EthernetAddress,
    start_ns: u64,
    stop_ns: u64,
    period_ns: u64,
    payload_len: usize,
    sent: u64,
}

impl HostApp for Burster {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_timer(self.start_ns, 0);
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut HostCtx<'_>) {
        if ctx.now() >= self.stop_ns {
            return;
        }
        let frame = build_frame(
            self.target,
            ctx.mac(),
            EtherType(0x0800),
            &vec![0u8; self.payload_len],
        );
        ctx.send(frame);
        self.sent += 1;
        ctx.set_timer(self.period_ns, 0);
    }
}

/// The built scenario: a simulator mid-flight plus the handles the
/// renderers need. Step it for a live view, or let
/// [`run_obs_scenario`] drive it to completion.
pub struct ObsScenario {
    /// The simulator (profiling and series enabled on every switch).
    pub sim: Simulator,
    /// Topology handles.
    pub fabric: LeafSpine,
    /// The host running the [`MicroburstMonitor`].
    pub monitor_host: HostId,
}

impl ObsScenario {
    /// Build the scenario at t=0: monitor on host 0 (leaf 0), echoing
    /// victim on host 2 (leaf 1), bursters on hosts 1 and 3.
    pub fn new() -> Self {
        let params = LeafSpineParams {
            n_leaves: 2,
            n_spines: 2,
            hosts_per_leaf: 2,
            host_link_kbps: 1_000_000, // 1 Gb/s: 8 ns of drain per queued byte
            fabric_link_kbps: 1_000_000,
            queue_limit_bytes: 256 * 1024, // lossless: the burst peaks far below
            delay_ns: time::micros(1),
            host_nic_kbps: 1_000_000,
        };
        let victim = EthernetAddress::from_host_id(2);
        let burster = |start_extra: u64| -> Box<dyn HostApp> {
            Box::new(Burster {
                target: victim,
                start_ns: BURST_START_NS + start_extra,
                stop_ns: BURST_END_NS,
                period_ns: 12_000, // ~1400 B / 12 µs ≈ line rate per burster
                payload_len: 1400,
                sent: 0,
            })
        };
        let apps: Vec<Box<dyn HostApp>> = vec![
            Box::new(MicroburstMonitor::new(
                victim,
                6, // leaf-spine-leaf out and back
                PROBE_INTERVAL_NS,
                50_000,
                PROBE_STOP_NS,
            )),
            burster(0),
            Box::new(EchoReceiver::default()),
            burster(3_000), // offset so the two bursts interleave
        ];
        let (mut sim, fabric) = leaf_spine(params, apps);
        // 20 µs ticks: fine-grained series without drowning the run.
        sim.observe().tick_interval_ns(time::micros(20));
        for &s in fabric.leaves.iter().chain(fabric.spines.iter()) {
            sim.switch_mut(s).enable_profiling(ProfileConfig::default());
        }
        sim.observe().series(128);
        let monitor_host = fabric.hosts[0][0];
        ObsScenario {
            sim,
            fabric,
            monitor_host,
        }
    }

    /// Advance simulation time.
    pub fn step_to(&mut self, t_ns: u64) {
        self.sim.run(RunLimit::Until(t_ns));
    }

    /// A fresh collector fed from the monitor's current state.
    pub fn collector(&self) -> Collector {
        let mut c = Collector::new();
        c.ingest_monitor(self.sim.host_app::<MicroburstMonitor>(self.monitor_host));
        c
    }

    /// Render the `tpp-top` table for the current instant.
    pub fn render(&self) -> String {
        render_top(&self.sim, Some(&self.collector()))
    }

    /// A metrics registry holding every switch's export (pipeline
    /// counters, profile spans) plus the collector's aggregates.
    pub fn registry(&self, collector: &Collector) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for &s in self.fabric.leaves.iter().chain(self.fabric.spines.iter()) {
            self.sim.switch(s).export_metrics(&mut reg);
        }
        collector.export_metrics(&mut reg);
        reg
    }
}

impl Default for ObsScenario {
    fn default() -> Self {
        ObsScenario::new()
    }
}

/// The finished scenario's artifacts, ready to print or pin as goldens.
pub struct ObsRun {
    /// The `tpp-top` table.
    pub top: String,
    /// Prometheus text-format snapshot of the fleet + collector.
    pub prom: String,
    /// JSONL dump of the ring series.
    pub series: String,
    /// Budget violations across all switches (must be > 0: the incast
    /// queues probes behind multiple 300 ns drains).
    pub budget_violations: u64,
    /// Worst collector-vs-ground-truth divergence (must be 0: the run
    /// is lossless and drained).
    pub divergence_max_bytes: u64,
    /// Probes the monitor sent / echoes it got back.
    pub probes_sent: u64,
    /// Echoes received.
    pub echoes_received: u64,
    /// High watermark of the victim leaf's queues, bytes.
    pub peak_queue_bytes: u64,
    /// Micro-bursts the §2.1 detector finds in the victim-leaf series.
    pub bursts_detected: usize,
}

/// Drive the scenario to quiescence and collect every artifact.
pub fn run_obs_scenario() -> ObsRun {
    let mut sc = ObsScenario::new();
    sc.sim.run(RunLimit::Quiescent {
        limit_ns: SCENARIO_END_NS,
    });
    let collector = sc.collector();
    let report = collector.divergence_vs_sim(&sc.sim);
    let top = render_top(&sc.sim, Some(&collector));
    let prom = prometheus_snapshot(&sc.registry(&collector));
    let series = series_jsonl(sc.sim.series().expect("series enabled"));

    let victim_leaf = sc.fabric.leaves[1];
    let victim_leaf_id = sc.sim.switch(victim_leaf).switch_id();
    let monitor = sc.sim.host_app::<MicroburstMonitor>(sc.monitor_host);
    let bursts = detect_bursts(
        &monitor.series_for(victim_leaf_id),
        5_000,
        5 * PROBE_INTERVAL_NS,
    );
    let budget_violations = sc
        .fabric
        .leaves
        .iter()
        .chain(sc.fabric.spines.iter())
        .map(|&s| {
            sc.sim
                .switch(s)
                .profile()
                .map_or(0, |p| p.budget_violations())
        })
        .sum();

    ObsRun {
        top,
        prom,
        series,
        budget_violations,
        divergence_max_bytes: report.max_abs_bytes,
        probes_sent: monitor.probes_sent,
        echoes_received: monitor.echoes_received,
        peak_queue_bytes: sc.sim.switch(victim_leaf).hottest_queue().2,
        bursts_detected: bursts.len(),
    }
}
