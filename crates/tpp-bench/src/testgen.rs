//! Shared test-input builders: frames, ASIC pairs, and golden-file
//! helpers.
//!
//! The cache-equivalence property tests (`tests/hot_path_caches.rs`),
//! the robustness tests (`tests/lint_and_robustness.rs`) and the
//! conformance fuzz loop (`conformance`) all need the same ingredients —
//! a routed cached/uncached ASIC pair, TPP frames with arbitrary
//! instruction and memory sections, and lock-step comparisons. They live
//! here once instead of being copy-pasted per test file.

use tpp_asic::{Asic, AsicConfig};
use tpp_wire::ethernet::{build_frame, EtherType};
use tpp_wire::tpp::{AddressingMode, TppBuilder};
use tpp_wire::EthernetAddress;

/// Identically-provisioned ASICs, hot-path caches on vs off, with the
/// standard three-route test topology: L2 host 1 → port 1, L2 host 2 →
/// port 2, L3 10.0.0.0/8 → port 3.
pub fn asic_pair() -> (Asic, Asic) {
    let mk = |config: AsicConfig| {
        let mut asic = Asic::new(config);
        asic.l2_mut().insert(EthernetAddress::from_host_id(1), 1);
        asic.l2_mut().insert(EthernetAddress::from_host_id(2), 2);
        asic.l3_mut().insert(0x0a00_0000, 8, 3);
        asic
    };
    (
        mk(AsicConfig::with_ports(7, 4)),
        mk(AsicConfig::with_ports(7, 4).without_hot_path_caches()),
    )
}

/// Feed the same frame to both ASICs and require identical observable
/// behavior, including the bytes that come out of every egress queue.
///
/// # Panics
///
/// On any divergence between the two ASICs.
pub fn step_both(cached: &mut Asic, uncached: &mut Asic, frame: &[u8], now_ns: u64) {
    let out_a = cached.handle_frame(frame.to_vec(), 0, now_ns);
    let out_b = uncached.handle_frame(frame.to_vec(), 0, now_ns);
    assert_eq!(out_a, out_b, "outcome diverged");
    for port in 0..cached.num_ports() as u16 {
        assert_eq!(
            cached.dequeue(port),
            uncached.dequeue(port),
            "forwarded bytes diverged on port {port}"
        );
    }
}

/// Require every TPP-visible global register to match between the two
/// ASICs.
///
/// # Panics
///
/// On any register mismatch.
pub fn regs_match(cached: &Asic, uncached: &Asic) {
    assert_eq!(cached.regs().l2_hits, uncached.regs().l2_hits);
    assert_eq!(cached.regs().l3_hits, uncached.regs().l3_hits);
    assert_eq!(cached.regs().tcam_hits, uncached.regs().tcam_hits);
    assert_eq!(
        cached.regs().packets_processed,
        uncached.regs().packets_processed
    );
    assert_eq!(cached.regs().tpps_executed, uncached.regs().tpps_executed);
}

/// Build an Ethernet frame from host `src_host` to host `dst_host`
/// carrying a stack-mode TPP section with the given raw instruction
/// words and initial packet-memory words.
pub fn tpp_frame(dst_host: u32, src_host: u32, words: &[u32], mem_init: &[u32]) -> Vec<u8> {
    let payload = TppBuilder::new(AddressingMode::Stack)
        .instructions(words)
        .memory_init(mem_init)
        .build();
    build_frame(
        EthernetAddress::from_host_id(dst_host),
        EthernetAddress::from_host_id(src_host),
        EtherType::TPP,
        &payload,
    )
}

/// Compare `actual` against the committed golden file at `path`,
/// printing a line-by-line diff on mismatch. Set `UPDATE_GOLDEN=1` to
/// (re)write the file instead of comparing.
///
/// # Panics
///
/// When the contents differ (or the file is missing) and
/// `UPDATE_GOLDEN` is unset.
pub fn assert_matches_golden(path: &std::path::Path, actual: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create golden dir");
        }
        std::fs::write(path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    let mut diff = String::new();
    let mut exp_lines = expected.lines();
    let mut act_lines = actual.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (exp_lines.next(), act_lines.next()) {
            (None, None) => break,
            (exp, act) if exp != act => {
                diff.push_str(&format!(
                    "  line {line}:\n    golden: {}\n    actual: {}\n",
                    exp.unwrap_or("<eof>"),
                    act.unwrap_or("<eof>")
                ));
            }
            _ => {}
        }
    }
    panic!(
        "golden mismatch against {} (set UPDATE_GOLDEN=1 to regenerate):\n{diff}",
        path.display()
    );
}
