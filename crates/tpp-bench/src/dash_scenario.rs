//! Dashboard feeds: scenarios that pair a live [`Simulator`] with a
//! [`Collector`] so `tpp_top` can capture [`FleetSnapshot`]s from them.
//!
//! Three feeds cover the obs plane end to end:
//!
//! * **obs** — the seeded 2×2 microburst incast behind the existing
//!   goldens (probes, profiling, series, divergence check).
//! * **fct** — a k=4 ECMP fat-tree running the lossy closed-loop
//!   transport on every host: retransmits, RTO ladder, rate clamps,
//!   FCT distribution and per-uplink spread all light up.
//! * **bond** — the bonded-diamond failover drama (degradation, flap,
//!   reboot) feeding path-health rows.
//!
//! Every feed is seeded and wall-clock-free, so a feed built from the
//! same [`SimConfig`] renders byte-identical dashboard frames at any
//! shard count — which is exactly what `tests/dashboard_golden.rs`
//! pins.

use tpp_apps::bonding::BondSender;
use tpp_apps::microburst::MicroburstMonitor;
use tpp_apps::rcpstar::init_rate_registers;
use tpp_asic::{PortId, ProfileConfig};
use tpp_netsim::{
    fat_tree_with, time, Endpoint, FatTreeParams, HostApp, HostId, RunLimit, SimConfig, Simulator,
    SwitchId,
};
use tpp_obs::{Collector, FleetSnapshot};
use tpp_telemetry::MetricsRegistry;

use crate::bonding_scenario;
use crate::obs_scenario::{ObsScenario, SCENARIO_END_NS as OBS_END_NS};
use crate::traffic::{
    generate_schedule, ClosedFlowGenApp, ClosedLoopConfig, FlowSizeDist, TrafficConfig,
};
use tpp_wire::EthernetAddress;

/// Seeded per-frame loss on the fct feed's inter-switch links, permille.
pub const FCT_LOSS_PERMILLE: u16 = 5;

/// Which scenario a feed drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DashScenario {
    /// Microburst incast on the 2×2 leaf-spine (the golden scenario).
    Obs,
    /// Lossy closed-loop transport over the k=4 ECMP fat-tree.
    Fct,
    /// Bonded-diamond failover.
    Bond,
}

impl DashScenario {
    /// Parse a `--scenario` argument.
    pub fn parse(s: &str) -> Option<DashScenario> {
        match s {
            "obs" => Some(DashScenario::Obs),
            "fct" => Some(DashScenario::Fct),
            "bond" => Some(DashScenario::Bond),
            _ => None,
        }
    }
}

/// Feed-specific harvest handles.
enum Harvest {
    Obs {
        monitor: HostId,
    },
    Fct {
        hosts: usize,
        /// Edge switches and their ECMP uplink ports.
        uplinks: Vec<(SwitchId, PortId)>,
    },
    Bond {
        sender: HostId,
    },
}

/// A simulator mid-flight plus the recipe for harvesting its collector.
///
/// `collector()` rebuilds the collector from scratch on every call, so
/// stepping the simulation and re-capturing never double-counts merged
/// counters — the refresh loop is idempotent by construction.
pub struct DashFeed {
    sim: Simulator,
    harvest: Harvest,
    end_ns: u64,
}

impl DashFeed {
    /// The microburst obs feed (default [`SimConfig`], honors
    /// `TPP_SHARDS`).
    pub fn obs() -> DashFeed {
        let sc = ObsScenario::new();
        DashFeed {
            harvest: Harvest::Obs {
                monitor: sc.monitor_host,
            },
            sim: sc.sim,
            end_ns: OBS_END_NS,
        }
    }

    /// The lossy closed-loop fct feed over a k=4 fat-tree (16 hosts,
    /// 20 switches), profiled and series-recorded, with ECMP enabled on
    /// top of the caller's `config`.
    pub fn fct(config: SimConfig) -> DashFeed {
        let params = FatTreeParams {
            k: 4,
            hosts_per_edge: 0, // textbook k/2 = 2
            link_kbps: 40_000_000,
            queue_limit_bytes: 4 * 1024 * 1024,
            delay_ns: time::micros(1),
            host_nic_kbps: 10_000_000,
        };
        let n_hosts = params.n_hosts();
        let macs: Vec<EthernetAddress> = (0..n_hosts)
            .map(|i| EthernetAddress::from_host_id(i as u32))
            .collect();
        let traffic = TrafficConfig {
            flows_per_host: 20,
            mean_gap_ns: 100_000,
            ..Default::default()
        };
        let mut last_start = 0u64;
        let apps: Vec<Box<dyn HostApp>> = (0..n_hosts)
            .map(|i| -> Box<dyn HostApp> {
                let dist = if i % 2 == 0 {
                    FlowSizeDist::WebSearch
                } else {
                    FlowSizeDist::DataMining
                };
                let sched = generate_schedule(&traffic, i as u32, &macs, dist);
                if let Some(f) = sched.last() {
                    last_start = last_start.max(f.start_ns);
                }
                Box::new(ClosedFlowGenApp::new(sched, ClosedLoopConfig::default()))
            })
            .collect();
        let end_ns = last_start + time::millis(8);

        let config = config.ecmp(true).frame_pool_buffers(4 * 1024);
        let (mut sim, tree) = fat_tree_with(config, params.clone(), apps);
        let half = 2; // k/2
        let hpe = params.effective_hosts_per_edge();
        let switches: Vec<SwitchId> = tree
            .edges
            .iter()
            .chain(tree.aggs.iter())
            .flatten()
            .copied()
            .chain(tree.cores.iter().copied())
            .collect();
        for &sw in &switches {
            init_rate_registers(sim.switch_mut(sw));
            sim.switch_mut(sw)
                .enable_profiling(ProfileConfig::default());
        }
        sim.observe().tick_interval_ns(time::micros(20));
        sim.observe().series(128);

        // Loss where ECMP spreads: edge uplinks and every agg port.
        let mut uplinks = Vec::new();
        for pod in tree.edges.iter() {
            for &edge in pod {
                for a in 0..half {
                    let port = (hpe + a) as PortId;
                    sim.set_link_loss(Endpoint::switch(edge, port), FCT_LOSS_PERMILLE);
                    uplinks.push((edge, port));
                }
            }
        }
        for pod in tree.aggs.iter() {
            for &agg in pod {
                for p in 0..4usize {
                    sim.set_link_loss(Endpoint::switch(agg, p as PortId), FCT_LOSS_PERMILLE);
                }
            }
        }
        DashFeed {
            sim,
            harvest: Harvest::Fct {
                hosts: n_hosts,
                uplinks,
            },
            end_ns,
        }
    }

    /// The bonded-diamond failover feed, profiled and series-recorded.
    pub fn bond(config: SimConfig) -> DashFeed {
        let (mut sim, diamond) = bonding_scenario::build(config);
        for i in 0..sim.num_switches() {
            sim.switch_mut(SwitchId(i))
                .enable_profiling(ProfileConfig::default());
        }
        sim.observe().tick_interval_ns(time::micros(20));
        sim.observe().series(128);
        DashFeed {
            sim,
            harvest: Harvest::Bond {
                sender: diamond.sender,
            },
            end_ns: bonding_scenario::SCENARIO_END_NS,
        }
    }

    /// Build the feed named by `scenario` with its default config.
    pub fn build(scenario: DashScenario) -> DashFeed {
        match scenario {
            DashScenario::Obs => DashFeed::obs(),
            DashScenario::Fct => DashFeed::fct(SimConfig::new()),
            DashScenario::Bond => DashFeed::bond(SimConfig::new()),
        }
    }

    /// Nominal end of the scenario, ns (live mode steps until here).
    pub fn end_ns(&self) -> u64 {
        self.end_ns
    }

    /// The simulator (read-only: snapshots capture from it).
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    /// Advance simulation time.
    pub fn step_to(&mut self, t_ns: u64) {
        self.sim.run(RunLimit::Until(t_ns));
    }

    /// Run to quiescence (bounded by the scenario end).
    pub fn run_to_end(&mut self) {
        self.sim.run(RunLimit::Quiescent {
            limit_ns: self.end_ns,
        });
    }

    /// A fresh collector harvested from the simulation's current state.
    pub fn collector(&self) -> Collector {
        let mut c = Collector::new();
        match &self.harvest {
            Harvest::Obs { monitor } => {
                c.ingest_monitor(self.sim.host_app::<MicroburstMonitor>(*monitor));
            }
            Harvest::Fct { hosts, uplinks } => {
                for i in 0..*hosts {
                    let app = self.sim.host_app::<ClosedFlowGenApp>(HostId(i));
                    c.ingest_transport(&app.stats_snapshot());
                    for comp in &app.completions {
                        c.ingest_fct(comp.fct_ns);
                    }
                }
                for &(sw, port) in uplinks {
                    c.ingest_uplink_tx(
                        self.sim.switch(sw).switch_id(),
                        port,
                        self.sim.link_tx_frames(Endpoint::switch(sw, port)),
                    );
                }
            }
            Harvest::Bond { sender } => {
                c.ingest_bond(self.sim.host_app::<BondSender>(*sender));
            }
        }
        c
    }

    /// Capture a fleet snapshot at the current instant, folding series
    /// into `window_ns` windows.
    pub fn snapshot(&self, window_ns: u64) -> FleetSnapshot {
        FleetSnapshot::capture(&self.sim, &self.collector(), window_ns)
    }

    /// Prometheus snapshot of every switch's export plus the
    /// collector's aggregates, at the current instant.
    pub fn prom(&self) -> String {
        let mut reg = MetricsRegistry::new();
        for i in 0..self.sim.num_switches() {
            self.sim.switch(SwitchId(i)).export_metrics(&mut reg);
        }
        self.collector().export_metrics(&mut reg);
        tpp_obs::prometheus_snapshot(&reg)
    }

    /// JSONL dump of the recorded series (all three feeds record).
    pub fn series_dump(&self) -> String {
        self.sim
            .series()
            .map(tpp_obs::series_jsonl)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_parse() {
        assert_eq!(DashScenario::parse("obs"), Some(DashScenario::Obs));
        assert_eq!(DashScenario::parse("fct"), Some(DashScenario::Fct));
        assert_eq!(DashScenario::parse("bond"), Some(DashScenario::Bond));
        assert_eq!(DashScenario::parse("nope"), None);
    }

    #[test]
    fn fct_feed_lights_up_every_snapshot_section() {
        let mut feed = DashFeed::fct(SimConfig::new());
        feed.run_to_end();
        let snap = feed.snapshot(time::micros(100));
        assert_eq!(snap.switches.len(), 20, "k=4 fat tree");
        let t = snap.transport.as_ref().expect("transport ingested");
        assert!(t.stats.flows_started > 0);
        assert!(t.stats.retransmits > 0, "5 permille loss must retransmit");
        assert!(t.fct_count > 0, "completions ingested as FCTs");
        assert_eq!(snap.uplinks.len(), 16, "8 edges x 2 uplinks");
        assert!(snap.uplinks.iter().all(|u| u.tx_frames > 0));
        let share: u64 = snap.uplinks.iter().map(|u| u.share_permille).sum();
        assert!(
            (990..=1000).contains(&share),
            "shares sum to ~1000 permille"
        );
        assert!(
            snap.switches.iter().any(|s| !s.windows.is_empty()),
            "series recorded and folded"
        );
    }

    #[test]
    fn bond_feed_reports_path_drama() {
        let mut feed = DashFeed::bond(SimConfig::new());
        feed.run_to_end();
        let snap = feed.snapshot(time::micros(500));
        assert_eq!(snap.bond_paths.len(), 2);
        assert!(
            snap.bond_paths.iter().any(|p| p.transitions > 0),
            "degradation + flap + reboot must move path health"
        );
    }
}
