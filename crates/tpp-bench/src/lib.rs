//! # tpp-bench — reproduction harness
//!
//! One binary per table/figure/quantitative claim in the paper (see the
//! per-experiment index in `DESIGN.md` and the results in
//! `EXPERIMENTS.md`):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig1_walkthrough` | Figure 1 — queue-size query walking a path |
//! | `fig2_rcp_convergence` | Figure 2 — RCP vs RCP\* R(t)/C series |
//! | `table1_instructions` | Table 1 — instruction set, live semantics |
//! | `table2_namespaces` | Table 2 — statistics namespaces, live reads |
//! | `overheads_table` | §3.3 — bytes/instr/cycle overhead accounting |
//! | `microburst_detection` | §2.1 — TPP monitor vs coarse poller |
//! | `ndb_debugger` | §2.3 — fault detection summary |
//! | `cstore_consistency` | §3.2.3 — racy vs linearizable counters |
//! | `rcp_ablation` | design-choice ablations for RCP\* |
//! | `fixed_function_vs_tpp` | §4 — ECN/loss/TPP signal comparison |
//! | `fct_comparison` | §1 — mice/elephant flow completion times |
//! | `conformance` | differential conformance fuzz: `tpp-asic` vs `tpp-spec` |
//! | `bonding_demo` | multi-NIC bonding: probe-driven failover under degradation, flap, reboot |
//! | `fct_bench` | §4 datacenters at scale — million-flow fat-tree FCT + memory benchmark |
//!
//! Criterion benches (`cargo bench`) measure the *model's* performance:
//! TCPU execution cost per instruction count, full-pipeline frame
//! processing, and simulator event throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bonding_scenario;
pub mod conformance;
pub mod dash_scenario;
pub mod obs_scenario;
pub mod testgen;
pub mod traffic;

/// Render a simple fixed-width table to stdout.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Parse a `--trace <path>` (or `--trace=<path>`) flag from the process
/// arguments. Reproduction binaries use it to opt into writing their
/// pipeline trace as JSON lines; absent the flag, tracing stays off and
/// the run is byte-identical to before the flag existed.
pub fn trace_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            match args.next() {
                Some(path) => return Some(path.into()),
                None => {
                    eprintln!("--trace requires a file path");
                    std::process::exit(2);
                }
            }
        } else if let Some(path) = arg.strip_prefix("--trace=") {
            return Some(path.into());
        }
    }
    None
}

/// Write trace events to `path` as JSON lines, reporting how many.
pub fn write_trace(path: &std::path::Path, events: &[tpp_telemetry::TraceEvent]) {
    let file = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {}: {e}", path.display());
        std::process::exit(2);
    });
    let mut out = std::io::BufWriter::new(file);
    tpp_telemetry::write_jsonl(&mut out, events).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(2);
    });
    println!(
        "\nwrote {} trace events to {}",
        events.len(),
        path.display()
    );
}

/// Mean of an f64 iterator; NaN when empty.
pub fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean([1.0, 2.0, 3.0].into_iter()), 2.0);
        assert!(mean(std::iter::empty()).is_nan());
    }
}
