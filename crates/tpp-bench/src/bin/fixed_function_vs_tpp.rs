//! §4 reproduction — the fixed-function spectrum vs TPPs, quantified.
//!
//! "There have been numerous efforts to expose switch statistics through
//! the dataplane ... One example is Explicit Congestion Notification
//! (ECN) ... Another example is IP Record Route ... Instead of
//! anticipating future requirements and designing specific solutions, we
//! adopt a more generic approach to accessing switch state."
//!
//! Three congestion controllers run the same 2-flow workload on the same
//! 10 Mb/s dumbbell; they differ only in what the network exposes:
//!
//! | system | dataplane signal | bits/pkt |
//! |---|---|---|
//! | AIMD (TCP-like) | packet loss only | 0 |
//! | DCTCP-like | fixed-function ECN mark | 1 |
//! | RCP\* | TPP reads of queue/counters/rate | 5 words |
//!
//! The table reports what richer signals buy: smaller queues, fewer
//! drops, and (for RCP\*) convergence without ever filling a buffer.

use tpp_apps::rcpstar::{init_rate_registers, RcpStarConfig, RcpStarSender};
use tpp_bench::print_table;
use tpp_host::EchoReceiver;
use tpp_netsim::RunLimit;
use tpp_netsim::{dumbbell, time, Dumbbell, DumbbellParams, HostApp, Simulator};
use tpp_rcp_ref::aimd::{AimdAcker, AimdConfig, AimdSender};
use tpp_rcp_ref::dctcp::{DctcpConfig, DctcpReceiver, DctcpSender};
use tpp_wire::EthernetAddress;

const RUN_S: u64 = 8;
const QUEUE_LIMIT: u32 = 60_000;
const ECN_K: u32 = 15_000;

struct Score {
    goodput_total_mbps: f64,
    fairness_ratio: f64,
    queue_hwm: u64,
    drops: u64,
}

fn finish(
    mut sim: Simulator,
    bell: Dumbbell,
    goodputs: impl Fn(&Simulator, &Dumbbell) -> Vec<f64>,
) -> Score {
    sim.run(RunLimit::Until(time::secs(RUN_S)));
    let g = goodputs(&sim, &bell);
    let stats = sim.switch(bell.left).queue_stats(bell.bottleneck_port, 0);
    let max = g.iter().cloned().fold(0.0, f64::max);
    let min = g.iter().cloned().fold(f64::INFINITY, f64::min);
    Score {
        goodput_total_mbps: g.iter().sum::<f64>() * 8.0 / RUN_S as f64 / 1e6,
        fairness_ratio: max / min.max(1.0),
        queue_hwm: stats.high_watermark_bytes,
        drops: stats.packets_dropped,
    }
}

fn run_aimd() -> Score {
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = (0..2)
        .map(|i| {
            let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
            (
                Box::new(AimdSender::new(dst, AimdConfig::default(), 0)) as Box<dyn HostApp>,
                Box::new(AimdAcker::default()) as Box<dyn HostApp>,
            )
        })
        .collect();
    let (sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: 2,
            queue_limit_bytes: QUEUE_LIMIT,
            ..Default::default()
        },
        apps,
    );
    finish(sim, bell, |sim, bell| {
        bell.receivers
            .iter()
            .map(|r| sim.host_app::<AimdAcker>(*r).bytes as f64)
            .collect()
    })
}

fn run_dctcp() -> Score {
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = (0..2)
        .map(|i| {
            let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
            (
                Box::new(DctcpSender::new(dst, DctcpConfig::default(), 0)) as Box<dyn HostApp>,
                Box::new(DctcpReceiver::default()) as Box<dyn HostApp>,
            )
        })
        .collect();
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: 2,
            queue_limit_bytes: QUEUE_LIMIT,
            ..Default::default()
        },
        apps,
    );
    let port = bell.bottleneck_port;
    sim.switch_mut(bell.left)
        .set_ecn_threshold(port, Some(ECN_K));
    finish(sim, bell, |sim, bell| {
        bell.receivers
            .iter()
            .map(|r| sim.host_app::<DctcpReceiver>(*r).bytes as f64)
            .collect()
    })
}

fn run_rcpstar() -> Score {
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = (0..2)
        .map(|i| {
            let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
            (
                Box::new(RcpStarSender::new(dst, RcpStarConfig::default())) as Box<dyn HostApp>,
                Box::new(EchoReceiver::default()) as Box<dyn HostApp>,
            )
        })
        .collect();
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: 2,
            queue_limit_bytes: QUEUE_LIMIT,
            ..Default::default()
        },
        apps,
    );
    for sw in [bell.left, bell.right] {
        init_rate_registers(sim.switch_mut(sw));
    }
    finish(sim, bell, |sim, bell| {
        bell.receivers
            .iter()
            .map(|r| sim.host_app::<EchoReceiver>(*r).data_bytes as f64)
            .collect()
    })
}

fn main() {
    println!("fixed-function signals vs TPPs: 2 flows, 10 Mb/s bottleneck, {RUN_S} s,");
    println!("{QUEUE_LIMIT} B buffer, ECN K = {ECN_K} B\n");

    let systems: Vec<(&str, &str, Score)> = vec![
        ("AIMD (TCP-like)", "loss only (0 bits)", run_aimd()),
        ("DCTCP-like", "ECN mark (1 bit)", run_dctcp()),
        ("RCP* (TPP)", "queue+counters+rate (5 words)", run_rcpstar()),
    ];
    let rows: Vec<Vec<String>> = systems
        .iter()
        .map(|(name, signal, s)| {
            vec![
                name.to_string(),
                signal.to_string(),
                format!("{:.2}", s.goodput_total_mbps),
                format!("{:.2}", s.fairness_ratio),
                s.queue_hwm.to_string(),
                s.drops.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "system",
            "dataplane signal",
            "goodput Mb/s",
            "max/min fair",
            "queue hwm B",
            "drops",
        ],
        &rows,
    );

    println!("\nreading: richer dataplane visibility buys emptier queues —");
    println!("AIMD must fill the buffer to find capacity, DCTCP rides its");
    println!("marking threshold, RCP* converges with near-empty queues.");
    println!("ECN and Record Route each anticipated ONE need; the same TPP");
    println!("interface expressed both (queue reads; switch-ID pushes) plus");
    println!("everything else in this repository, with no new silicon.");
}
