//! §3.2.3 reproduction — CSTORE's linearizable consistency vs plain
//! read-modify-write, under growing writer concurrency.
//!
//! Each of N hosts performs `GOAL` increments of one shared switch
//! counter. Racy mode (PUSH + STORE) loses updates as soon as writers
//! overlap; linearizable mode (CSTORE with retry) is always exact, at
//! the cost of extra round trips for conflicts — the quantified version
//! of the paper's "congestion control does not require such strong
//! notions of consistency, but we support a conditional store".

use tpp_apps::{CounterTask, CounterWriteMode};
use tpp_bench::print_table;
use tpp_host::EchoReceiver;
use tpp_netsim::RunLimit;
use tpp_netsim::{dumbbell, time, DumbbellParams, HostApp};
use tpp_wire::EthernetAddress;

const GOAL: u32 = 25;
const COUNTER_WORD: usize = 0;

fn run(n_hosts: usize, mode: CounterWriteMode) -> (u32, u32, u64, u64) {
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = (0..n_hosts)
        .map(|i| {
            let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
            (
                Box::new(CounterTask::new(dst, 1, COUNTER_WORD, GOAL, mode)) as Box<dyn HostApp>,
                Box::new(EchoReceiver::default()) as Box<dyn HostApp>,
            )
        })
        .collect();
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: n_hosts,
            bottleneck_kbps: 100_000,
            ..Default::default()
        },
        apps,
    );
    sim.run(RunLimit::Until(time::secs(60)));
    let value = sim
        .switch(bell.left)
        .global_sram()
        .word(COUNTER_WORD)
        .unwrap();
    let expected = n_hosts as u32 * GOAL;
    let mut conflicts = 0;
    let mut round_trips = 0;
    for s in &bell.senders {
        let task = sim.host_app::<CounterTask>(*s);
        assert!(task.done(), "task did not finish");
        conflicts += task.conflicts;
        round_trips += task.round_trips;
    }
    (value, expected, conflicts, round_trips)
}

fn main() {
    println!("shared-counter accounting: each host applies {GOAL} increments\n");
    let mut rows = Vec::new();
    for n in [1usize, 2, 3, 5] {
        for (label, mode) in [
            ("racy (PUSH+STORE)", CounterWriteMode::Racy),
            ("CSTORE (linearizable)", CounterWriteMode::Linearizable),
        ] {
            let (value, expected, conflicts, round_trips) = run(n, mode);
            let lost = expected.saturating_sub(value);
            rows.push(vec![
                n.to_string(),
                label.to_string(),
                expected.to_string(),
                value.to_string(),
                lost.to_string(),
                conflicts.to_string(),
                round_trips.to_string(),
            ]);
        }
    }
    print_table(
        &[
            "writers",
            "mode",
            "expected",
            "final value",
            "lost",
            "conflicts",
            "round trips",
        ],
        &rows,
    );
    println!("\nverdict: CSTORE never loses an update; the racy read-modify-write");
    println!("loses more as writer concurrency grows (the §3.2.3 accounting case).");
}
