//! Table 2 reproduction: the statistics namespaces, each demonstrated by
//! a live TPP read against a switch with known state.

use tpp_asic::{Asic, AsicConfig, Outcome};
use tpp_bench::print_table;
use tpp_isa::{assemble, Namespace, Stat};
use tpp_wire::ethernet::{build_frame, EtherType, Frame};
use tpp_wire::tpp::{AddressingMode, TppBuilder, TppPacket};
use tpp_wire::EthernetAddress;

fn main() {
    // A switch with visible state: id 0x42, one frame pre-queued on the
    // egress port, one SRAM word set.
    let dst = EthernetAddress::from_host_id(1);
    let src = EthernetAddress::from_host_id(0);
    let mut asic = Asic::new(AsicConfig::with_ports(0x42, 2));
    asic.l2_mut().insert(dst, 1);
    asic.link_sram_mut(1)
        .and_then(|mut sram| sram.set_word(0, 10_000))
        .unwrap();
    let filler = build_frame(dst, src, EtherType(0x0802), &[0u8; 100]);
    asic.handle_frame(filler, 0, 0);

    // One probe reading a representative statistic from every namespace.
    let probe_src = "PUSH [Switch:SwitchID]\n\
                     PUSH [Switch:FlowTableVersion]\n\
                     PUSH [Link:RX-Bytes]\n\
                     PUSH [Link:CapacityKbps]\n\
                     PUSH [Queue:QueueSize]\n\
                     PUSH [Queue:BytesEnqueued]\n\
                     PUSH [PacketMetadata:InputPort]\n\
                     PUSH [PacketMetadata:PacketLength]\n\
                     PUSH [Link:Scratch[0]]\n\
                     PUSH [Switch:Scratch[0]]";
    let program = assemble(probe_src).unwrap();
    let payload = TppBuilder::new(AddressingMode::Stack)
        .instructions(&program.encode_words().unwrap())
        .memory_words(10)
        .build();
    let frame = build_frame(dst, src, EtherType::TPP, &payload);
    let frame_len = frame.len() as u32;
    let outcome = asic.handle_frame(frame, 0, 0);
    let Outcome::Enqueued {
        port,
        exec: Some(report),
        ..
    } = outcome
    else {
        panic!("probe not executed")
    };
    assert!(report.completed());
    asic.dequeue(port); // filler
    let sent = asic.dequeue(port).unwrap();
    let parsed = Frame::new_checked(&sent[..]).unwrap();
    let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
    let words = tpp.stack_words();

    println!("Table 2: statistics namespaces (one live TPP, 10 PUSHes)\n");
    let reads = [
        (
            "Per-Switch",
            "Switch:SwitchID",
            words[0],
            "0x42".to_string(),
        ),
        (
            "Per-Switch",
            "Switch:FlowTableVersion",
            words[1],
            "0".to_string(),
        ),
        (
            "Per-Port",
            "Link:RX-Bytes",
            words[2],
            "114 (filler) + probe".to_string(),
        ),
        (
            "Per-Port",
            "Link:CapacityKbps",
            words[3],
            "10000000 (10 Gb/s)".to_string(),
        ),
        (
            "Per-Queue",
            "Queue:QueueSize",
            words[4],
            "114 (filler queued)".to_string(),
        ),
        (
            "Per-Queue",
            "Queue:BytesEnqueued",
            words[5],
            "114".to_string(),
        ),
        (
            "Per-Packet",
            "PacketMetadata:InputPort",
            words[6],
            "0".to_string(),
        ),
        (
            "Per-Packet",
            "PacketMetadata:PacketLength",
            words[7],
            format!("{frame_len} (this probe)"),
        ),
        (
            "Per-Link SRAM",
            "Link:Scratch[0]",
            words[8],
            "10000 (preset)".to_string(),
        ),
        (
            "Global SRAM",
            "Switch:Scratch[0]",
            words[9],
            "0".to_string(),
        ),
    ];
    let rows: Vec<Vec<String>> = reads
        .iter()
        .map(|(ns, sym, got, expect)| {
            vec![
                ns.to_string(),
                sym.to_string(),
                got.to_string(),
                expect.clone(),
            ]
        })
        .collect();
    print_table(&["Namespace", "Statistic", "TPP read", "expected"], &rows);

    println!("\nfull memory map ({} named statistics):", Stat::ALL.len());
    let rows: Vec<Vec<String>> = Stat::ALL
        .iter()
        .map(|s| {
            vec![
                format!("{}", s.addr()),
                s.symbol().to_string(),
                match s.addr().namespace() {
                    Namespace::Switch => "per-switch, RO",
                    Namespace::Link => "per-port (egress), RO",
                    Namespace::Queue => "per-queue (egress), RO",
                    Namespace::PacketMetadata => "per-packet, RO",
                    _ => "?",
                }
                .to_string(),
            ]
        })
        .collect();
    print_table(&["vaddr", "symbol", "bank"], &rows);
    println!("\nwritable namespaces: 0x4000+ per-link scratch SRAM, 0x8000+ global scratch SRAM");
}
