//! Figure 1 reproduction: print the TPP's packet bytes hop by hop as it
//! traverses three switches, showing the SP walk 0x0 → 0x4 → 0x8 → 0xc
//! and the queue-size snapshots landing in packet memory.

use tpp_asic::{Asic, AsicConfig, Outcome};
use tpp_bench::{trace_arg, write_trace};
use tpp_host::DATA_ETHERTYPE;
use tpp_isa::assemble;
use tpp_telemetry::SharedSink;
use tpp_wire::ethernet::{build_frame, EtherType, Frame};
use tpp_wire::tpp::{AddressingMode, TppBuilder, TppPacket};
use tpp_wire::EthernetAddress;

fn show(tag: &str, frame: &[u8]) {
    let parsed = Frame::new_checked(frame).unwrap();
    let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
    let words: Vec<String> = tpp
        .memory_words()
        .iter()
        .map(|w| format!("{w:#06x}"))
        .collect();
    println!(
        "{tag:<28} SP = {:#03x}   packet memory = [{}]",
        tpp.sp(),
        words.join(", ")
    );
}

fn main() {
    let trace_to = trace_arg();
    let sink = SharedSink::new(4096);
    println!("Figure 1: a TPP querying the network for queue sizes\n");
    println!("program: PUSH [Queue:QueueSize]\n");

    let dst = EthernetAddress::from_host_id(1);
    let src = EthernetAddress::from_host_id(0);
    let program = assemble("PUSH [Queue:QueueSize]").unwrap();
    let payload = TppBuilder::new(AddressingMode::Stack)
        .instructions(&program.encode_words().unwrap())
        .memory_words(3)
        .build();
    let mut frame = build_frame(dst, src, EtherType::TPP, &payload);
    show("end-host emits:", &frame);

    // Three standalone switches with distinct backlogs on the egress
    // port, matching the figure's 0x00 / 0xa0 / 0x0e annotations.
    for (i, backlog) in [(1u32, 0x00usize), (2, 0xa0), (3, 0x0e)] {
        let mut asic = Asic::new(AsicConfig::with_ports(i, 2));
        if trace_to.is_some() {
            asic.set_trace_sink(Some(Box::new(sink.clone())));
        }
        asic.l2_mut().insert(dst, 1);
        // Pre-fill the egress queue with `backlog` bytes.
        if backlog > 0 {
            let filler = build_frame(dst, src, DATA_ETHERTYPE, &vec![0u8; backlog - 14]);
            assert!(asic.handle_frame(filler, 0, 0).is_enqueued());
        }
        let outcome = asic.handle_frame(frame.clone(), 0, 1_000 * i as u64);
        let Outcome::Enqueued { port, exec, .. } = outcome else {
            panic!("probe dropped at switch {i}");
        };
        let report = exec.expect("TCPU ran");
        assert!(report.completed());
        if backlog > 0 {
            asic.dequeue(port); // the filler
        }
        frame = asic.dequeue(port).expect("probe queued");
        show(&format!("after switch {i} (q={backlog:#04x}):"), &frame);
    }

    println!("\nThe packet memory was preallocated by the end-host and the");
    println!("TPP never grew or shrank inside the network; each switch");
    println!("recorded its egress queue depth the instant the packet passed.");

    if let Some(path) = trace_to {
        write_trace(&path, &sink.events());
    }
}
