//! Multi-NIC bonding failover, end to end.
//!
//! Runs the seeded bonding scenario — a two-path bonded diamond whose
//! path 0 suffers a cellular-style degradation ramp, a hard fabric
//! flap, and a switch reboot — and prints what the sender's scheduler
//! saw and did, using TPP probe telemetry as its only link-quality
//! signal. Writes `BENCH_bonding.json` for CI to byte-diff.
//!
//! With `--trace <path>`, also captures the fleet-wide pipeline trace
//! of the run as JSON lines.

use tpp_bench::bonding_scenario::{
    build, run_bonding_scenario, BondingRun, DATA_STOP_NS, FLAP_DOWN_NS, PROBE_INTERVAL_NS,
    SCENARIO_END_NS,
};
use tpp_bench::{print_table, trace_arg, write_trace};
use tpp_netsim::{RunLimit, SimConfig};

fn write_file(path: &str, contents: &str) {
    std::fs::write(path, contents).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
    println!("\nwrote {path}");
}

fn main() {
    println!("bonding_demo — probe-driven multi-NIC failover");
    println!("===============================================\n");

    // With --trace we re-run the same scenario with a trace sink
    // attached; without it, the plain run keeps its golden byte
    // behavior.
    let trace_to = trace_arg();
    let run: BondingRun = run_bonding_scenario(SimConfig::default());
    if let Some(path) = &trace_to {
        let (mut sim, _diamond) = build(SimConfig::default());
        let sink = sim.observe().trace_all(65_536);
        sim.run(RunLimit::Quiescent {
            limit_ns: SCENARIO_END_NS,
        });
        write_trace(path, &sink.events());
    }

    println!("per-path probe accounting:");
    let rows: Vec<Vec<String>> = run
        .path_probes
        .iter()
        .enumerate()
        .map(|(i, &(sent, echoes, lost))| {
            vec![
                format!("path {i}"),
                sent.to_string(),
                echoes.to_string(),
                lost.to_string(),
                run.path_data_sent[i].to_string(),
                run.path_tx_frames[i].to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "path",
            "probes",
            "echoes",
            "lost",
            "data sched",
            "wire frames",
        ],
        &rows,
    );

    println!("\nhealth timeline (scheduler view):");
    let ev_rows: Vec<Vec<String>> = run
        .health_events
        .iter()
        .map(|e| {
            vec![
                format!("{:.3} ms", e.t_ns as f64 / 1e6),
                format!("path {}", e.path),
                format!("{:?}", e.from),
                format!("{:?}", e.to),
            ]
        })
        .collect();
    print_table(&["t", "path", "from", "to"], &ev_rows);

    println!("\ndelivery:");
    println!(
        "  sequences sent      {:>8}   delivered {:>8}   duplicate deliveries {}",
        run.sequences_sent, run.delivered, run.duplicate_deliveries
    );
    println!(
        "  retransmits         {:>8}   proactive dups {:>5}   suppressed at rx {:>6}",
        run.retransmits, run.duplicates_sent, run.duplicates_suppressed
    );
    println!(
        "  ack latency (µs)    p50 {:>6}   p99 {:>6}   max {:>6}",
        run.ack_latency_ns.0 / 1000,
        run.ack_latency_ns.1 / 1000,
        run.ack_latency_ns.2 / 1000
    );
    println!("  goodput             {:>8.2} Mbit/s", run.goodput_mbps);
    match run.failover_detect_ns {
        Some(ns) => println!(
            "  flap@{} ms → Down in {:.0} µs ({:.1} probe intervals)",
            FLAP_DOWN_NS / 1_000_000,
            ns as f64 / 1e3,
            ns as f64 / PROBE_INTERVAL_NS as f64
        ),
        None => println!("  no post-flap failover event (unexpected)"),
    }
    println!(
        "  quiesced at {:.3} ms (data stop {} ms); epoch changes {}",
        run.quiesced_at_ns as f64 / 1e6,
        DATA_STOP_NS / 1_000_000,
        run.epoch_changes
    );
    println!("  fingerprint {:#018x}", run.fingerprint());

    write_file("BENCH_bonding.json", &run.to_json());
}
