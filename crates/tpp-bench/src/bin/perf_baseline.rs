//! Tracked performance baseline for the hot-path work: pipeline and TCPU
//! throughput with the decode/flow caches on vs off, and a
//! datacenter-scale netsim workload exercising the frame pool.
//!
//! Writes `BENCH_pipeline.json` and `BENCH_netsim.json` into the current
//! directory (run from the repo root; the committed copies are the
//! tracked baseline). The "caches off" rows use
//! `AsicConfig::without_hot_path_caches()`, i.e. the pre-optimization
//! configuration, so every run re-measures the speedup against its own
//! baseline on the same machine instead of comparing against stale
//! absolute numbers.
//!
//! ```console
//! $ cargo run --release -p tpp-bench --bin perf_baseline
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use tpp_asic::{Asic, AsicConfig, FlowAction, FlowEntry, FlowMatch, ProfileConfig};
use tpp_host::transport::{segments_for, FlowReceiver, FlowSender, TransportConfig};
use tpp_isa::assemble;
use tpp_netsim::RunLimit;
use tpp_netsim::{leaf_spine_with, time, HostApp, HostCtx, LeafSpineParams, SimConfig};
use tpp_wire::ethernet::{build_frame, EtherType};
use tpp_wire::tpp::{AddressingMode, TppBuilder};
use tpp_wire::EthernetAddress;

/// Counts every heap allocation, so the JSON can report allocations per
/// packet — the metric the frame pool and in-place `strip_tpp` move.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

struct Measurement {
    elapsed_s: f64,
    allocs: u64,
}

fn measure(f: impl FnOnce()) -> Measurement {
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    f();
    Measurement {
        elapsed_s: start.elapsed().as_secs_f64(),
        allocs: ALLOCATIONS.load(Ordering::Relaxed) - allocs_before,
    }
}

/// A populated ASIC at ACL scale: 256 TCAM entries (the rule-set sizes
/// that motivated OVS's megaflow cache), 1k L2 MACs, 256 L3 prefixes.
fn asic(config: AsicConfig) -> Asic {
    let mut asic = Asic::new(config);
    asic.l2_mut().insert(EthernetAddress::from_host_id(1), 1);
    for i in 0..256 {
        asic.install_flow(FlowEntry {
            id: 1000 + i,
            version: 1,
            priority: i as u16,
            pattern: FlowMatch {
                ethertype: Some(0x9999), // never matches the bench traffic
                in_port: Some((i % 4) as u16),
                ..Default::default()
            },
            action: FlowAction::Forward(2),
        });
    }
    for i in 0..1024 {
        asic.l2_mut()
            .insert(EthernetAddress::from_host_id(100 + i), (i % 4) as u16);
    }
    for i in 0..256u32 {
        asic.l3_mut()
            .insert(0x0a00_0000 | (i << 8), 24, (i % 4) as u16);
    }
    asic
}

fn tpp_probe_frame(payload_len: usize) -> Vec<u8> {
    // A two-sample stats probe (10 instructions): the §2 monitoring
    // pattern of reading a batch of counters per hop, twice per packet.
    let program = assemble(
        "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]\nPUSH [Link:RX-Bytes]\n\
         PUSH [Link:CapacityKbps]\nPUSH [Link:Scratch[0]]\n\
         PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]\nPUSH [Link:RX-Bytes]\n\
         PUSH [Link:CapacityKbps]\nPUSH [Link:Scratch[0]]",
    )
    .expect("probe program assembles");
    let payload = TppBuilder::new(AddressingMode::Stack)
        .instructions(&program.encode_words().expect("probe encodes"))
        .memory_words(10)
        .payload(&vec![0u8; payload_len])
        .build();
    build_frame(
        EthernetAddress::from_host_id(1),
        EthernetAddress::from_host_id(0),
        EtherType::TPP,
        &payload,
    )
}

fn plain_frame() -> Vec<u8> {
    build_frame(
        EthernetAddress::from_host_id(1),
        EthernetAddress::from_host_id(0),
        EtherType(0x0802),
        &[0u8; 64],
    )
}

/// The closed-loop transport state machine with the network factored
/// out: 64 KiB flows pushed through a lossless sender/receiver ping-pong
/// (poll_send → data_hdr → on_data → ack_hdr → on_ack). Measures the
/// pure per-segment cost of the reliability layer the fat-tree FCT
/// benchmark now runs every byte through.
fn run_transport_workload(target_segments: u64) -> WorkloadRow {
    let cfg = TransportConfig::default();
    let bytes: u32 = 64 * 1024;
    let segs_per_flow = segments_for(bytes, cfg.mss) as u64;
    let flows = (target_segments / segs_per_flow).max(1);
    let m = measure(|| {
        for f in 0..flows {
            let mut tx = FlowSender::new(cfg.clone(), f, bytes, false, 0);
            let mut rx = FlowReceiver::new(tx.total_segs());
            let mut now = 0u64;
            while !tx.is_complete() {
                now += 10_000;
                while let Some(seg) = tx.poll_send(now) {
                    let hdr = tx.data_hdr(seg, now);
                    rx.on_data(hdr.seq, now);
                    let ack = rx.ack_hdr(&hdr);
                    tx.on_ack(ack.ack, ack.seq, ack.ts, now);
                }
            }
            assert!(rx.is_complete(), "lossless ping-pong must complete");
        }
    });
    let segments = flows * segs_per_flow;
    WorkloadRow {
        name: "transport_state_machine",
        caches: "-",
        frames: segments,
        elapsed_s: m.elapsed_s,
        packets_per_sec: segments as f64 / m.elapsed_s,
        tpps_per_sec: 0.0,
        allocs_per_packet: m.allocs as f64 / segments as f64,
    }
}

struct WorkloadRow {
    name: &'static str,
    caches: &'static str,
    frames: u64,
    elapsed_s: f64,
    packets_per_sec: f64,
    tpps_per_sec: f64,
    allocs_per_packet: f64,
}

/// Push `frames` copies of `frame` through a fresh populated ASIC,
/// dequeuing as it goes.
fn run_pipeline_workload(
    name: &'static str,
    caches: &'static str,
    config: AsicConfig,
    frame: &[u8],
    frames: u64,
    tpp: bool,
) -> WorkloadRow {
    run_pipeline_workload_profiled(name, caches, config, frame, frames, tpp, false)
}

/// Like [`run_pipeline_workload`], optionally with the observability
/// profiler sampling every packet — the `obs_overhead` pair measures
/// what turning the profiler on costs relative to the same ASIC with
/// it off.
fn run_pipeline_workload_profiled(
    name: &'static str,
    caches: &'static str,
    config: AsicConfig,
    frame: &[u8],
    frames: u64,
    tpp: bool,
    profiled: bool,
) -> WorkloadRow {
    let mut a = asic(config);
    if profiled {
        a.enable_profiling(ProfileConfig::default());
    }
    // Warm up tables, caches, and the branch predictor outside the
    // measured window.
    for _ in 0..1000 {
        a.handle_frame(frame.to_vec(), 0, 0);
        a.dequeue(1);
    }
    let m = measure(|| {
        for _ in 0..frames {
            a.handle_frame(frame.to_vec(), 0, 0);
            a.dequeue(1);
        }
    });
    WorkloadRow {
        name,
        caches,
        frames,
        elapsed_s: m.elapsed_s,
        packets_per_sec: frames as f64 / m.elapsed_s,
        tpps_per_sec: if tpp {
            frames as f64 / m.elapsed_s
        } else {
            0.0
        },
        allocs_per_packet: m.allocs as f64 / frames as f64,
    }
}

fn json_row(row: &WorkloadRow) -> String {
    format!(
        "    {{\"name\": \"{}\", \"caches\": \"{}\", \"frames\": {}, \
         \"elapsed_s\": {:.4}, \"packets_per_sec\": {:.0}, \
         \"tpps_per_sec\": {:.0}, \"allocs_per_packet\": {:.2}}}",
        row.name,
        row.caches,
        row.frames,
        row.elapsed_s,
        row.packets_per_sec,
        row.tpps_per_sec,
        row.allocs_per_packet
    )
}

fn write_file(path: &str, contents: &str) {
    std::fs::write(path, contents).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {path}");
}

// ---------------------------------------------------------------------
// Netsim workload: a leaf-spine fabric where every host streams TPP
// probes at its ring neighbor, so each frame crosses the fabric and
// executes on 2-3 TCPUs.
// ---------------------------------------------------------------------

struct ProbeStreamer {
    target: EthernetAddress,
    template: Vec<u8>,
    period_ns: u64,
    until_ns: u64,
    sent: u64,
}

impl HostApp for ProbeStreamer {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_timer(self.period_ns, 0);
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut HostCtx<'_>) {
        if ctx.now() >= self.until_ns {
            return;
        }
        // Draw capacity from the simulator's frame pool instead of
        // allocating per probe.
        let mut frame = ctx.alloc_frame(self.template.len());
        frame.extend_from_slice(&self.template);
        // Retarget the template (built with a placeholder destination).
        frame[..6].copy_from_slice(&self.target.0);
        ctx.send(frame);
        self.sent += 1;
        ctx.set_timer(self.period_ns, 0);
    }
}

#[derive(Default)]
struct ProbeSink {
    got: u64,
}

impl HostApp for ProbeSink {
    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        self.got += 1;
        // Hand the consumed buffer back so senders reuse its capacity.
        ctx.recycle_frame(frame);
    }
}

struct NetsimRow {
    name: &'static str,
    shards: usize,
    threaded: bool,
    elapsed_s: f64,
    sent: u64,
    delivered: u64,
    tpps: u64,
    allocs: u64,
    pool: (u64, u64, u64),
}

/// One full netsim workload under `cfg`: a leaf-spine fabric where even
/// hosts stream TPP probes across the fabric at odd hosts. Every config
/// must report identical `sent`/`delivered`/`tpps` (shard-count
/// invariance); only the wall clock may differ.
fn run_netsim_row(
    name: &'static str,
    shards: usize,
    threaded: bool,
    cfg: SimConfig,
    sim_ms: u64,
) -> NetsimRow {
    const PROBE_PERIOD_NS: u64 = 5_000; // 200k probes/sec per host

    let params = LeafSpineParams::default(); // 4 leaves x 2 spines, 16 hosts
    let n_hosts = params.n_leaves * params.hosts_per_leaf;
    let template = tpp_probe_frame(64);
    // Even hosts stream probes at the matching odd host one leaf over,
    // so every probe crosses leaf -> spine -> leaf (3 TCPU executions);
    // odd hosts sink and recycle.
    let apps: Vec<Box<dyn HostApp>> = (0..n_hosts)
        .map(|i| -> Box<dyn HostApp> {
            if i % 2 == 0 {
                Box::new(ProbeStreamer {
                    target: EthernetAddress::from_host_id(
                        ((i + params.hosts_per_leaf + 1) % n_hosts) as u32,
                    ),
                    template: template.clone(),
                    period_ns: PROBE_PERIOD_NS,
                    until_ns: time::millis(sim_ms),
                    sent: 0,
                })
            } else {
                Box::new(ProbeSink::default())
            }
        })
        .collect();
    let (mut sim, fabric) = leaf_spine_with(cfg, params, apps);

    let m = measure(|| {
        sim.run(RunLimit::Until(time::millis(sim_ms)));
    });

    let mut sent = 0u64;
    let mut delivered = 0u64;
    for (i, host) in fabric.all_hosts().enumerate() {
        if i % 2 == 0 {
            sent += sim.host_app::<ProbeStreamer>(host).sent;
        } else {
            delivered += sim.host_app::<ProbeSink>(host).got;
        }
    }
    let tpps: u64 = fabric
        .leaves
        .iter()
        .chain(fabric.spines.iter())
        .map(|&s| sim.switch(s).regs().tpps_executed)
        .sum();
    NetsimRow {
        name,
        shards,
        threaded,
        elapsed_s: m.elapsed_s,
        sent,
        delivered,
        tpps,
        allocs: m.allocs,
        pool: sim.frame_pool_stats(),
    }
}

fn netsim_json_row(r: &NetsimRow) -> String {
    let (reused, fresh, recycled) = r.pool;
    format!(
        "    {{\"name\": \"{}\", \"shards\": {}, \"threaded\": {}, \
         \"elapsed_s\": {:.4}, \"probes_sent\": {}, \"probes_delivered\": {}, \
         \"tpp_executions\": {}, \"tpps_per_wall_sec\": {:.0}, \
         \"allocations\": {}, \
         \"frame_pool\": {{\"reused\": {reused}, \"fresh\": {fresh}, \"recycled\": {recycled}}}}}",
        r.name,
        r.shards,
        r.threaded,
        r.elapsed_s,
        r.sent,
        r.delivered,
        r.tpps,
        r.tpps as f64 / r.elapsed_s,
        r.allocs
    )
}

fn run_netsim_workload() -> String {
    const SIM_MS: u64 = 50;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // The 1-shard row is the tracked baseline CI gates on; the 4-shard
    // rows measure what the windowed scheduler costs (sequential) and
    // what threading buys on this machine's core count (threaded). On a
    // single-core box the threaded row is expected to *lose* to 1 shard
    // — barrier churn with nothing to run in parallel — which is why
    // every row carries the `cores` context field.
    let rows = [
        run_netsim_row("1_shard", 1, true, SimConfig::new().shards(1), SIM_MS),
        run_netsim_row(
            "4_shards_seq",
            4,
            false,
            SimConfig::new().shards(4).sequential(),
            SIM_MS,
        ),
        run_netsim_row(
            "4_shards_threaded",
            4,
            true,
            SimConfig::new().shards(4),
            SIM_MS,
        ),
    ];

    let base = &rows[0];
    for r in &rows {
        assert_eq!(
            (r.sent, r.delivered, r.tpps),
            (base.sent, base.delivered, base.tpps),
            "{}: sharded run diverged from the 1-shard baseline",
            r.name
        );
        println!(
            "netsim[{:<17}] {} probes sent, {} delivered, {} TPP executions \
             in {:.3} s wall ({:.0} TPPs/sec)",
            r.name,
            r.sent,
            r.delivered,
            r.tpps,
            r.elapsed_s,
            r.tpps as f64 / r.elapsed_s
        );
    }

    format!(
        "{{\n  \"bench\": \"perf_baseline/netsim\",\n  \
         \"topology\": \"leaf_spine 4 leaves x 2 spines, 16 hosts\",\n  \
         \"sim_ms\": {SIM_MS},\n  \"cores\": {cores},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.iter()
            .map(netsim_json_row)
            .collect::<Vec<_>>()
            .join(",\n")
    )
}

/// Extract `"field": <number>` from the machine-written row line that
/// contains `matcher` (the committed JSONs are one row per line, so no
/// JSON dependency is needed).
fn committed_row_field(doc: &str, matcher: &str, field: &str) -> Option<f64> {
    let line = doc.lines().find(|l| l.contains(matcher))?;
    let idx = line.find(&format!("\"{field}\":"))?;
    let rest = &line[idx + field.len() + 3..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    // `--quick`: a sanity-check pass at 1/10th the frame count and a
    // single netsim row that prints a one-line delta against the
    // committed baselines instead of rewriting them.
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let frames: u64 = if quick { 20_000 } else { 200_000 };

    // Probe-sized frames: TPP monitoring traffic is small (§3.3 puts a
    // 5-instruction TPP at well under 100 bytes), and small frames keep
    // the measurement on the per-packet compute rather than memcpy.
    let tpp = tpp_probe_frame(64);
    let plain = plain_frame();

    let rows = [
        run_pipeline_workload(
            "tcpu_repeated_program",
            "off",
            AsicConfig::with_ports(1, 4).without_hot_path_caches(),
            &tpp,
            frames,
            true,
        ),
        run_pipeline_workload(
            "tcpu_repeated_program",
            "on",
            AsicConfig::with_ports(1, 4),
            &tpp,
            frames,
            true,
        ),
        run_pipeline_workload(
            "pipeline_plain",
            "off",
            AsicConfig::with_ports(1, 4).without_hot_path_caches(),
            &plain,
            frames,
            false,
        ),
        run_pipeline_workload(
            "pipeline_plain",
            "on",
            AsicConfig::with_ports(1, 4),
            &plain,
            frames,
            false,
        ),
        // Observability overhead: identical TPP workload, caches on,
        // with the profiler off vs sampling every packet. The "off" row
        // is the parity check CI gates on (observability disabled must
        // cost nothing); the on/off ratio is the tracked sampling cost.
        run_pipeline_workload_profiled(
            "obs_overhead_off",
            "on",
            AsicConfig::with_ports(1, 4),
            &tpp,
            frames,
            true,
            false,
        ),
        run_pipeline_workload_profiled(
            "obs_overhead_on",
            "on",
            AsicConfig::with_ports(1, 4),
            &tpp,
            frames,
            true,
            true,
        ),
        // The closed-loop transport's per-segment cost, network factored
        // out — the state machine every fct_bench --closed-loop byte
        // crosses twice (send + ACK).
        run_transport_workload(frames * 5),
    ];

    let speedup = |name: &str| -> f64 {
        let off = rows
            .iter()
            .find(|r| r.name == name && r.caches == "off")
            .expect("off row");
        let on = rows
            .iter()
            .find(|r| r.name == name && r.caches == "on")
            .expect("on row");
        on.packets_per_sec / off.packets_per_sec
    };
    let tcpu_speedup = speedup("tcpu_repeated_program");
    let plain_speedup = speedup("pipeline_plain");
    let row_pps = |name: &str| -> f64 {
        rows.iter()
            .find(|r| r.name == name)
            .expect("row")
            .packets_per_sec
    };
    // Sampling-on throughput as a fraction of sampling-off (1.0 = free).
    let obs_on_vs_off = row_pps("obs_overhead_on") / row_pps("obs_overhead_off");

    for row in &rows {
        println!(
            "{:<24} caches={:<3} {:>12.0} pkts/sec  {:>6.2} allocs/pkt",
            row.name, row.caches, row.packets_per_sec, row.allocs_per_packet
        );
    }
    println!(
        "speedup: tcpu_repeated_program {tcpu_speedup:.2}x, pipeline_plain {plain_speedup:.2}x"
    );
    println!("obs sampling on/off throughput ratio: {obs_on_vs_off:.2}");

    if quick {
        // One short netsim row, then a single delta line against the
        // committed baselines — nothing is rewritten.
        let netsim = run_netsim_row("1_shard", 1, true, SimConfig::new().shards(1), 10);
        let ratio = |measured: f64, committed: Option<f64>| match committed {
            Some(c) if c > 0.0 => format!("{:.2}x", measured / c),
            _ => "n/a".to_string(),
        };
        let row_pps_on = |name: &str| -> f64 {
            rows.iter()
                .find(|r| r.name == name && r.caches == "on")
                .expect("caches-on row")
                .packets_per_sec
        };
        let pipeline_doc = std::fs::read_to_string("BENCH_pipeline.json").unwrap_or_default();
        let netsim_doc = std::fs::read_to_string("BENCH_netsim.json").unwrap_or_default();
        println!(
            "quick delta vs committed: tcpu_on {}, plain_on {}, obs_ratio {}, \
             netsim_1shard {} (tpps/wall-s), netsim allocs {} vs {}",
            ratio(
                row_pps_on("tcpu_repeated_program"),
                committed_row_field(
                    &pipeline_doc,
                    "\"name\": \"tcpu_repeated_program\", \"caches\": \"on\"",
                    "packets_per_sec",
                ),
            ),
            ratio(
                row_pps_on("pipeline_plain"),
                committed_row_field(
                    &pipeline_doc,
                    "\"name\": \"pipeline_plain\", \"caches\": \"on\"",
                    "packets_per_sec",
                ),
            ),
            ratio(
                obs_on_vs_off,
                committed_row_field(&pipeline_doc, "\"speedup\"", "obs_sampling_on_vs_off"),
            ),
            ratio(
                netsim.tpps as f64 / netsim.elapsed_s,
                committed_row_field(&netsim_doc, "\"name\": \"1_shard\"", "tpps_per_wall_sec"),
            ),
            netsim.allocs,
            committed_row_field(&netsim_doc, "\"name\": \"1_shard\"", "allocations")
                .map_or("n/a".to_string(), |v| format!("{v:.0} committed")),
        );
        return;
    }

    let pipeline_json = format!(
        "{{\n  \"bench\": \"perf_baseline/pipeline\",\n  \"workloads\": [\n{}\n  ],\n  \
         \"speedup\": {{\"tcpu_repeated_program\": {tcpu_speedup:.2}, \
         \"pipeline_plain\": {plain_speedup:.2}, \
         \"obs_sampling_on_vs_off\": {obs_on_vs_off:.2}}}\n}}\n",
        rows.iter().map(json_row).collect::<Vec<_>>().join(",\n")
    );
    write_file("BENCH_pipeline.json", &pipeline_json);

    let netsim_json = run_netsim_workload();
    write_file("BENCH_netsim.json", &netsim_json);
}
