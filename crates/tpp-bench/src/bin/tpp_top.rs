//! `tpp-top` — a `top(1)` for the TPP fabric.
//!
//! Three modes:
//!
//! * **Interactive dashboard** (default): a tabbed, sortable fleet view
//!   with windowed sparklines, driven by key presses (`1`–`5`/tab to
//!   switch category, `w` window width, `s` sort, `p` pause, `q` quit).
//!   Pick the feed with `--scenario obs|fct|bond`.
//! * **Headless**: `--headless` prints the classic summary table once
//!   (the CI golden); add `--frame WxH` to print one dashboard frame
//!   instead — a pure function of the seeded scenario, so CI byte-diffs
//!   it at any shard count. `--prom FILE` / `--series FILE` write the
//!   Prometheus snapshot and JSONL series dump (`-` for stdout).
//! * **Profile diff**: `--diff A.jsonl B.jsonl` compares two recorded
//!   series dumps (e.g. caches on vs off) side by side.
//!
//! ```console
//! $ cargo run -p tpp-bench --bin tpp_top                      # live view
//! $ cargo run -p tpp-bench --bin tpp_top -- --scenario fct
//! $ cargo run -p tpp-bench --bin tpp_top -- --headless --prom snap.prom --series series.jsonl
//! $ cargo run -p tpp-bench --bin tpp_top -- --headless --frame 120x40 --tab transport --scenario fct
//! $ cargo run -p tpp-bench --bin tpp_top -- --diff cache_on.jsonl cache_off.jsonl
//! ```

use std::io::{Read as _, Write as _};
use std::sync::mpsc;

use tpp_bench::dash_scenario::{DashFeed, DashScenario};
use tpp_bench::obs_scenario::run_obs_scenario;
use tpp_obs::render::Tab;
use tpp_obs::snapshot::SortKey;
use tpp_obs::{parse_series_jsonl, render_dashboard, render_profile_diff, DashState};

fn write_out(path: &str, what: &str, contents: &str) {
    if path == "-" {
        print!("{contents}");
        return;
    }
    match std::fs::write(path, contents) {
        Ok(()) => eprintln!("wrote {what} to {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: tpp_top [--headless] [--prom FILE] [--series FILE]\n\
         \x20              [--frame WxH] [--scenario obs|fct|bond] [--tab NAME]\n\
         \x20              [--window 0-3] [--sort switch|viol|hotq|pkts] [--wall]\n\
         \x20              [--diff A.jsonl B.jsonl]"
    );
    std::process::exit(2);
}

struct Args {
    headless: bool,
    prom: Option<String>,
    series: Option<String>,
    frame: Option<(usize, usize)>,
    scenario: DashScenario,
    tab: Option<Tab>,
    window: Option<usize>,
    sort: Option<SortKey>,
    wall: bool,
    diff: Option<(String, String)>,
}

fn parse_args() -> Args {
    let mut args = Args {
        headless: false,
        prom: None,
        series: None,
        frame: None,
        scenario: DashScenario::Obs,
        tab: None,
        window: None,
        sort: None,
        wall: false,
        diff: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    let next = |flag: &str, it: &mut std::slice::Iter<'_, String>| -> String {
        it.next()
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
            .clone()
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--headless" => args.headless = true,
            "--prom" => args.prom = Some(next("--prom", &mut it)),
            "--series" => args.series = Some(next("--series", &mut it)),
            "--wall" => args.wall = true,
            "--frame" => {
                let spec = next("--frame", &mut it);
                let Some((w, h)) = spec.split_once('x') else {
                    eprintln!("--frame wants WxH, e.g. 120x40");
                    usage()
                };
                match (w.parse(), h.parse()) {
                    (Ok(w), Ok(h)) => args.frame = Some((w, h)),
                    _ => usage(),
                }
            }
            "--scenario" => {
                let name = next("--scenario", &mut it);
                args.scenario = DashScenario::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown scenario: {name}");
                    usage()
                });
            }
            "--tab" => {
                let name = next("--tab", &mut it);
                args.tab = Tab::ALL.iter().copied().find(|t| t.title() == name);
                if args.tab.is_none() {
                    eprintln!("unknown tab: {name}");
                    usage();
                }
            }
            "--window" => {
                args.window = next("--window", &mut it).parse().ok();
                if args.window.is_none_or(|w| w > 3) {
                    eprintln!("--window wants an index 0-3");
                    usage();
                }
            }
            "--sort" => {
                let name = next("--sort", &mut it);
                args.sort = SortKey::ALL.iter().copied().find(|k| k.label() == name);
                if args.sort.is_none() {
                    eprintln!("unknown sort key: {name}");
                    usage();
                }
            }
            "--diff" => {
                let a = next("--diff", &mut it);
                let b = next("--diff", &mut it);
                args.diff = Some((a, b));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    args
}

fn dash_state(args: &Args) -> DashState {
    let mut state = if args.wall {
        DashState::wall_clock()
    } else {
        DashState::default()
    };
    if let Some(t) = args.tab {
        state.tab = t;
    }
    if let Some(w) = args.window {
        state.window_idx = w;
    }
    if let Some(s) = args.sort {
        state.sort = s;
    }
    state
}

fn read_file(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    })
}

/// Put the controlling terminal into raw single-key mode via `stty`.
/// Returns false (line-buffered fallback: keys need Enter) when there
/// is no tty or no `stty`.
fn raw_mode(on: bool) -> bool {
    let spec: &[&str] = if on { &["raw", "-echo"] } else { &["sane"] };
    std::process::Command::new("stty")
        .args(spec)
        .stdin(std::process::Stdio::inherit())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// Terminal size via `stty size` (rows cols); dashboard default
/// otherwise.
fn term_size() -> (usize, usize) {
    let fallback = (120, 40);
    let Ok(out) = std::process::Command::new("stty")
        .arg("size")
        .stdin(std::process::Stdio::inherit())
        .output()
    else {
        return fallback;
    };
    let text = String::from_utf8_lossy(&out.stdout);
    let mut it = text.split_whitespace();
    match (
        it.next().and_then(|r| r.parse::<usize>().ok()),
        it.next().and_then(|c| c.parse::<usize>().ok()),
    ) {
        (Some(rows), Some(cols)) if rows >= 10 && cols >= 60 => (cols, rows),
        _ => fallback,
    }
}

fn live_dashboard(args: &Args) {
    let mut feed = DashFeed::build(args.scenario);
    let mut state = dash_state(args);
    let (width, height) = args.frame.unwrap_or_else(term_size);
    let step_ns = (feed.end_ns() / 200).max(1);

    let raw = raw_mode(true);
    let (tx, rx) = mpsc::channel::<char>();
    std::thread::spawn(move || {
        let mut buf = [0u8; 1];
        while std::io::stdin().read_exact(&mut buf).is_ok() {
            if tx.send(buf[0] as char).is_err() {
                break;
            }
        }
    });

    let mut t = 0u64;
    while !state.quit {
        if !state.paused && t < feed.end_ns() {
            t += step_ns;
            feed.step_to(t);
        }
        let snap = feed.snapshot(state.window_ns());
        let frame = render_dashboard(&snap, &state, width, height);
        // Clear + home, then the frame; raw mode needs explicit \r.
        // The last row keeps no newline: on a terminal exactly `height`
        // tall it would scroll the title row off the top.
        let frame = frame.trim_end_matches('\n').to_string();
        let frame = if raw {
            frame.replace('\n', "\r\n")
        } else {
            frame
        };
        print!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::stdout().flush();
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(40);
        loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            match rx.recv_timeout(left) {
                Ok(key) => {
                    state.apply_key(key);
                    if state.quit {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    }
    if raw {
        raw_mode(false);
    }
    println!();
}

fn main() {
    let args = parse_args();

    if let Some((a, b)) = &args.diff {
        let (width, height) = args.frame.unwrap_or((120, 40));
        let dump_a = parse_series_jsonl(&read_file(a));
        let dump_b = parse_series_jsonl(&read_file(b));
        print!(
            "{}",
            render_profile_diff(&dump_a, &dump_b, a, b, width, height)
        );
        return;
    }

    if let (true, Some((width, height))) = (args.headless, args.frame) {
        // One dashboard frame from the finished seeded scenario: a pure
        // function of (scenario, state, size) — the CI-pinned artifact.
        let mut feed = DashFeed::build(args.scenario);
        feed.run_to_end();
        let state = dash_state(&args);
        let snap = feed.snapshot(state.window_ns());
        print!("{}", render_dashboard(&snap, &state, width, height));
        if let Some(p) = &args.prom {
            write_out(p, "prometheus snapshot", &feed.prom());
        }
        if let Some(p) = &args.series {
            write_out(p, "series jsonl", &feed.series_dump());
        }
        return;
    }

    if !args.headless {
        live_dashboard(&args);
        return;
    }

    // Classic headless path: run the full scenario deterministically and
    // print the end state (what CI pins as the obs_top golden).
    let run = run_obs_scenario();
    print!("{}", run.top);
    println!(
        "\nscenario: probes={} echoes={} peak_queue={}B bursts={} budget_violations={} divergence_max={}B",
        run.probes_sent,
        run.echoes_received,
        run.peak_queue_bytes,
        run.bursts_detected,
        run.budget_violations,
        run.divergence_max_bytes,
    );
    if let Some(p) = args.prom {
        write_out(&p, "prometheus snapshot", &run.prom);
    }
    if let Some(p) = args.series {
        write_out(&p, "series jsonl", &run.series);
    }
}
