//! `tpp-top` — a `top(1)` for the TPP fabric.
//!
//! Runs the seeded microburst scenario (see `obs_scenario`) and renders
//! per-switch hot queues, pipeline stage latencies, budget violations,
//! and the probe collector's divergence check.
//!
//! ```console
//! $ cargo run -p tpp-bench --bin tpp_top            # live view
//! $ cargo run -p tpp-bench --bin tpp_top -- --headless
//! $ cargo run -p tpp-bench --bin tpp_top -- --headless --prom snap.prom --series series.jsonl
//! ```
//!
//! `--headless` prints the final table once and exits (what CI pins as
//! a golden). `--prom FILE` / `--series FILE` additionally write the
//! Prometheus snapshot and the JSONL ring-series dump (`-` for stdout).

use std::io::Write as _;

use tpp_bench::obs_scenario::{run_obs_scenario, ObsScenario, SCENARIO_END_NS};
use tpp_netsim::time;

fn write_out(path: &str, what: &str, contents: &str) {
    if path == "-" {
        print!("{contents}");
        return;
    }
    match std::fs::write(path, contents) {
        Ok(()) => eprintln!("wrote {what} to {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut headless = false;
    let mut prom_path: Option<String> = None;
    let mut series_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--headless" => headless = true,
            "--prom" => prom_path = Some(it.next().expect("--prom FILE").clone()),
            "--series" => series_path = Some(it.next().expect("--series FILE").clone()),
            "--help" | "-h" => {
                eprintln!("usage: tpp_top [--headless] [--prom FILE] [--series FILE]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    if !headless {
        // Live mode: advance the simulation in 100 µs frames, redrawing
        // the table between frames like top(1).
        let mut sc = ObsScenario::new();
        let mut t = 0;
        while t < SCENARIO_END_NS {
            t += time::micros(100);
            sc.step_to(t);
            let frame = sc.render();
            print!("\x1b[2J\x1b[H{frame}");
            let _ = std::io::stdout().flush();
            std::thread::sleep(std::time::Duration::from_millis(40));
        }
        println!();
    }

    // Headless (and the live mode's final summary): run the full
    // scenario deterministically and print the end state.
    let run = run_obs_scenario();
    print!("{}", run.top);
    println!(
        "\nscenario: probes={} echoes={} peak_queue={}B bursts={} budget_violations={} divergence_max={}B",
        run.probes_sent,
        run.echoes_received,
        run.peak_queue_bytes,
        run.bursts_detected,
        run.budget_violations,
        run.divergence_max_bytes,
    );
    if let Some(p) = prom_path {
        write_out(&p, "prometheus snapshot", &run.prom);
    }
    if let Some(p) = series_path {
        write_out(&p, "series jsonl", &run.series);
    }
}
