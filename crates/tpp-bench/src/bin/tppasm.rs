//! `tppasm` — the TPP assembler as a command-line tool.
//!
//! ```console
//! $ tppasm asm program.tpp             # assemble a file to hex words
//! $ echo "PUSH [Queue:QueueSize]" | tppasm asm -
//! $ tppasm dis 0x18002000 0x18000000   # disassemble hex words
//! $ tppasm lint program.tpp 5 20       # lint for 5 hops, 20 mem words
//! $ tppasm symbols                      # dump the memory map
//! ```
//!
//! Exit status: 0 on success (lint: and no findings), 1 on any error or
//! lint finding — scriptable in CI for TPP programs kept in repos.

use std::io::Read;
use tpp_isa::{assemble, disassemble, lint, Namespace, Program, Stat};

fn read_source(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    }
}

fn cmd_asm(path: &str) -> Result<(), String> {
    let source = read_source(path)?;
    let program = assemble(&source).map_err(|e| e.to_string())?;
    let words = program.encode_words().map_err(|e| e.to_string())?;
    for word in words {
        println!("{word:#010x}");
    }
    eprintln!(
        "{} instruction(s), {} bytes on the wire, {} packet-memory word(s)/hop",
        program.len(),
        program.wire_len(),
        program.words_per_hop()
    );
    Ok(())
}

fn cmd_dis(words: &[String]) -> Result<(), String> {
    let parsed: Result<Vec<u32>, String> = words
        .iter()
        .map(|w| {
            let cleaned = w.trim().trim_start_matches("0x");
            u32::from_str_radix(cleaned, 16).map_err(|e| format!("{w}: {e}"))
        })
        .collect();
    let program = Program::decode_words(&parsed?).map_err(|e| e.to_string())?;
    println!("{}", disassemble(&program));
    Ok(())
}

fn cmd_lint(path: &str, hops: &str, mem_words: &str) -> Result<(), String> {
    let source = read_source(path)?;
    let program = assemble(&source).map_err(|e| e.to_string())?;
    let hops: usize = hops.parse().map_err(|_| "bad hop count".to_string())?;
    let mem: usize = mem_words
        .parse()
        .map_err(|_| "bad memory size".to_string())?;
    let findings = lint(&program, hops, mem);
    if findings.is_empty() {
        eprintln!(
            "clean ({} instruction(s), plan: {hops} hops, {mem} words)",
            program.len()
        );
        Ok(())
    } else {
        for finding in &findings {
            eprintln!("lint: {finding}");
        }
        Err(format!("{} finding(s)", findings.len()))
    }
}

fn cmd_symbols() {
    println!("{:<8} {:<36} namespace", "vaddr", "symbol");
    for stat in Stat::ALL {
        let ns = match stat.addr().namespace() {
            Namespace::Switch => "per-switch (RO)",
            Namespace::Link => "per-port, egress (RO)",
            Namespace::Queue => "per-queue, egress (RO)",
            Namespace::PacketMetadata => "per-packet (RO)",
            _ => "?",
        };
        println!(
            "{:<8} {:<36} {}",
            stat.addr().to_string(),
            stat.symbol(),
            ns
        );
    }
    println!(
        "{:<8} {:<36} per-port scratch SRAM (RW)",
        "0x4000+", "Link:Scratch[k]"
    );
    println!(
        "{:<8} {:<36} global scratch SRAM (RW)",
        "0x8000+", "Switch:Scratch[k]"
    );
}

fn usage() -> String {
    "usage:\n  tppasm asm <file|->\n  tppasm dis <hexword>...\n  tppasm lint <file|-> <hops> <mem_words>\n  tppasm symbols"
        .to_string()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("asm") if args.len() == 2 => cmd_asm(&args[1]),
        Some("dis") if args.len() >= 2 => cmd_dis(&args[1..]),
        Some("lint") if args.len() == 4 => cmd_lint(&args[1], &args[2], &args[3]),
        Some("symbols") => {
            cmd_symbols();
            Ok(())
        }
        _ => Err(usage()),
    };
    if let Err(message) = result {
        eprintln!("{message}");
        std::process::exit(1);
    }
}
