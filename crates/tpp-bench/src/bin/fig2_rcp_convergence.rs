//! Figure 2 reproduction: R(t)/C on a 10 Mb/s bottleneck shared by three
//! flows starting at t = 0, 10, 20 s; α = 0.5, β = 1.
//!
//! Emits a gnuplot/spreadsheet-friendly series (`t rcp rcp_star`) on
//! stdout followed by the settled-window summary that captures the
//! figure's claim: both systems converge quickly to the max-min fair
//! share (≈ C, C/2, C/3).

use tpp_apps::rcpstar::{init_rate_registers, RcpStarConfig, RcpStarSender};
use tpp_bench::{mean, print_table};
use tpp_host::EchoReceiver;
use tpp_netsim::RunLimit;
use tpp_netsim::{dumbbell, time, DumbbellParams, HostApp};
use tpp_rcp_ref::{FlowSchedule, NativeRcpRouter, RcpFluidSim, RcpParams};
use tpp_wire::EthernetAddress;

const C_BPS: f64 = 10e6;
const DURATION_S: u64 = 30;

/// Run the dumbbell workload; `native` picks where the law runs.
fn run_packet_level(native: bool) -> Vec<(u64, u64)> {
    let starts = [0u64, time::secs(10), time::secs(20)];
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = starts
        .iter()
        .enumerate()
        .map(|(i, start)| {
            let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
            let cfg = RcpStarConfig {
                start_ns: *start,
                compute_updates: !native,
                ..Default::default()
            };
            (
                Box::new(RcpStarSender::new(dst, cfg)) as Box<dyn HostApp>,
                Box::new(EchoReceiver::default()) as Box<dyn HostApp>,
            )
        })
        .collect();
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: 3,
            ..Default::default()
        },
        apps,
    );
    for sw in [bell.left, bell.right] {
        init_rate_registers(sim.switch_mut(sw));
    }
    if native {
        let mut routers = [
            NativeRcpRouter::paper_defaults(sim.switch(bell.left).num_ports(), 0.05, 0.01),
            NativeRcpRouter::paper_defaults(sim.switch(bell.right).num_ports(), 0.05, 0.01),
        ];
        let mut t = 0;
        while t < time::secs(DURATION_S) {
            t += time::millis(10);
            sim.run(RunLimit::Until(t));
            routers[0].step(sim.switch_mut(bell.left), t);
            routers[1].step(sim.switch_mut(bell.right), t);
        }
    } else {
        sim.run(RunLimit::Until(time::secs(DURATION_S)));
    }
    sim.host_app::<RcpStarSender>(bell.senders[0])
        .rate_trace
        .clone()
}

fn main() {
    // Reference RCP (the ns-2 role).
    let reference = RcpFluidSim::new(
        RcpParams::paper_defaults(C_BPS, 0.05),
        vec![
            FlowSchedule::starting_at(0.0),
            FlowSchedule::starting_at(10.0),
            FlowSchedule::starting_at(20.0),
        ],
    )
    .run(DURATION_S as f64);

    // RCP* (end-host) and native-router RCP on the packet simulator.
    let star = run_packet_level(false);
    let native = run_packet_level(true);

    println!("# Figure 2: Ratio R(t)/C over time (0.5 s buckets)");
    println!("# t_s rcp_fluid rcp_native rcp_star");
    let bucket_mean = |trace: &[(u64, u64)], lo: f64, hi: f64| {
        mean(trace.iter().filter_map(|(t, rate)| {
            let ts = *t as f64 / 1e9;
            (ts >= lo && ts < hi).then_some(*rate as f64 / C_BPS)
        }))
    };
    for bucket in 0..DURATION_S * 2 {
        let lo = bucket as f64 * 0.5;
        let hi = lo + 0.5;
        let r = mean(
            reference
                .iter()
                .filter(|s| s.t_s >= lo && s.t_s < hi)
                .map(|s| s.r_over_c),
        );
        let n = bucket_mean(&native, lo, hi);
        let s = bucket_mean(&star, lo, hi);
        println!("{lo:.1} {r:.4} {n:.4} {s:.4}");
    }

    println!();
    let windows = [
        ("1 flow (5-10 s)", 5.0, 10.0, 1.0),
        ("2 flows (15-20 s)", 15.0, 20.0, 0.5),
        ("3 flows (25-30 s)", 25.0, 30.0, 1.0 / 3.0),
    ];
    let rows: Vec<Vec<String>> = windows
        .iter()
        .map(|(label, lo, hi, ideal)| {
            let r = mean(
                reference
                    .iter()
                    .filter(|s| s.t_s >= *lo && s.t_s < *hi)
                    .map(|s| s.r_over_c),
            );
            let n = bucket_mean(&native, *lo, *hi);
            let s = bucket_mean(&star, *lo, *hi);
            vec![
                label.to_string(),
                format!("{ideal:.3}"),
                format!("{r:.3}"),
                format!("{n:.3}"),
                format!("{s:.3}"),
            ]
        })
        .collect();
    print_table(
        &[
            "window",
            "ideal R/C",
            "RCP (fluid sim)",
            "RCP (native router)",
            "RCP* (TPP+endhost)",
        ],
        &rows,
    );
    println!("\n(native router = the law in ASIC firmware on the same packet");
    println!(" simulator; fluid sim = the standalone ns-2-role reference)");
}
