//! Ablation study for the three design choices RCP\* needed beyond the
//! paper's sketch (each is called out in DESIGN.md and the rcpstar docs):
//!
//! 1. **y from byte counters** instead of the coarse utilization EWMA
//!    register;
//! 2. **gain normalization** via the shared last-update timestamp word,
//!    so N concurrent per-flow controllers sum to one correctly-gained
//!    loop;
//! 3. **bounded multiplicative steps** (factor ∈ [1/2, 2]) so transient
//!    measurement spikes cannot crash the shared rate to its floor.
//!
//! Each variant runs 2 flows for 10 s on the Figure 2 dumbbell; we score
//! the settled window by mean |R/C − 0.5| and by rate jitter (stddev).

use tpp_apps::rcpstar::{init_rate_registers, RcpStarConfig, RcpStarSender};
use tpp_bench::print_table;
use tpp_host::EchoReceiver;
use tpp_netsim::RunLimit;
use tpp_netsim::{dumbbell, time, DumbbellParams, HostApp};
use tpp_wire::EthernetAddress;

const C_BPS: f64 = 10e6;

fn run(cfg_mod: impl Fn(&mut RcpStarConfig)) -> (f64, f64, u64) {
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = (0..2)
        .map(|i| {
            let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
            let mut cfg = RcpStarConfig::default();
            cfg_mod(&mut cfg);
            (
                Box::new(RcpStarSender::new(dst, cfg)) as Box<dyn HostApp>,
                Box::new(EchoReceiver::default()) as Box<dyn HostApp>,
            )
        })
        .collect();
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: 2,
            ..Default::default()
        },
        apps,
    );
    for sw in [bell.left, bell.right] {
        init_rate_registers(sim.switch_mut(sw));
    }
    sim.run(RunLimit::Until(time::secs(10)));

    // Score flow 0's settled window (6-10 s).
    let trace = &sim.host_app::<RcpStarSender>(bell.senders[0]).rate_trace;
    let window: Vec<f64> = trace
        .iter()
        .filter(|(t, _)| *t >= time::secs(6))
        .map(|(_, r)| *r as f64 / C_BPS)
        .collect();
    let mean = window.iter().sum::<f64>() / window.len().max(1) as f64;
    let var = window.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / window.len().max(1) as f64;
    let drops = sim
        .switch(bell.left)
        .queue_stats(bell.bottleneck_port, 0)
        .packets_dropped;
    ((mean - 0.5).abs(), var.sqrt(), drops)
}

fn main() {
    println!("RCP* design-choice ablation: 2 flows, 10 Mb/s bottleneck, 10 s;");
    println!("settled window 6-10 s, ideal R/C = 0.5\n");

    type ConfigEdit = Box<dyn Fn(&mut RcpStarConfig)>;
    let variants: Vec<(&str, ConfigEdit)> = vec![
        (
            "full RCP* (all three)",
            Box::new(|_c: &mut RcpStarConfig| {}),
        ),
        (
            "- byte-counter y (use util register)",
            Box::new(|c: &mut RcpStarConfig| c.y_from_byte_counter = false),
        ),
        (
            "- gain normalization",
            Box::new(|c: &mut RcpStarConfig| c.gain_normalization = false),
        ),
        (
            "- step clamp",
            Box::new(|c: &mut RcpStarConfig| c.step_clamp = false),
        ),
        (
            "- all three",
            Box::new(|c: &mut RcpStarConfig| {
                c.y_from_byte_counter = false;
                c.gain_normalization = false;
                c.step_clamp = false;
            }),
        ),
    ];

    let mut rows = Vec::new();
    for (name, f) in &variants {
        let (err, jitter, drops) = run(f);
        rows.push(vec![
            name.to_string(),
            format!("{err:.3}"),
            format!("{jitter:.3}"),
            drops.to_string(),
        ]);
    }
    print_table(
        &["variant", "|mean R/C - 0.5|", "R/C stddev", "drops"],
        &rows,
    );
    println!("\nreading: every removal increases error and/or jitter; removing");
    println!("gain normalization or the step clamp lets the shared register");
    println!("limit-cycle between its clamps (large stddev).");
}
