//! §2.3 reproduction — the forwarding-plane debugger: per-fault detection
//! summary over repeated randomized-position fault injection.
//!
//! For each fault class (stale rule, misroute, black hole) on each
//! possible switch position, run traced traffic and check that the
//! policy verifier (a) detects the fault and (b) localizes it to the
//! right switch. Prints a detection matrix.

use tpp_apps::ndb::{missing_ids, NdbProbeSender, PathPolicy, TraceCollector, Violation};
use tpp_asic::{FlowAction, FlowMatch};
use tpp_bench::{print_table, trace_arg, write_trace};
use tpp_control::NetworkController;
use tpp_netsim::RunLimit;
use tpp_netsim::{linear_chain, time, LinearChainParams};
use tpp_wire::EthernetAddress;

const N_SWITCHES: usize = 5;
const N_PACKETS: u32 = 25;

#[derive(Clone, Copy, PartialEq)]
enum Fault {
    StaleRule,
    BlackHole,
}

/// Returns (detected, localized_to_expected_switch).
fn inject_and_detect(fault: Fault, position: usize) -> (bool, bool) {
    let mut controller = NetworkController::new();
    let dst = EthernetAddress::from_host_id(1);
    let (mut sim, chain) = linear_chain(
        LinearChainParams {
            n_switches: N_SWITCHES,
            ..Default::default()
        },
        Box::new(NdbProbeSender::new(
            dst,
            N_SWITCHES,
            time::micros(50),
            N_PACKETS,
        )),
        Box::new(TraceCollector::default()),
    );
    let entry = controller.new_entry_id();
    for sw in &chain.switches {
        controller.install_rule(
            sim.switch_mut(*sw),
            entry,
            10,
            FlowMatch {
                dst_mac: Some(dst),
                ..Default::default()
            },
            FlowAction::Forward(1),
        );
    }
    let target = chain.switches[position];
    let target_id = sim.switch(target).switch_id();
    match fault {
        Fault::StaleRule => {
            controller.intend_version_only(target_id, entry);
        }
        Fault::BlackHole => {
            let bad = controller.new_entry_id();
            controller.install_rule(
                sim.switch_mut(target),
                bad,
                20,
                FlowMatch {
                    dst_mac: Some(dst),
                    ..Default::default()
                },
                FlowAction::Drop,
            );
        }
    }
    sim.run(RunLimit::Until(time::millis(20)));

    let policy = PathPolicy {
        expected_path: (1..=N_SWITCHES as u32).collect(),
        expected_versions: controller.intended_versions_all(),
    };
    let sent = &sim.host_app::<NdbProbeSender>(chain.left).sent_ids;
    let traces = &sim.host_app::<TraceCollector>(chain.right).traces;
    match fault {
        Fault::StaleRule => {
            let mut detected = false;
            let mut localized = true;
            for trace in traces {
                for v in policy.verify(trace) {
                    detected = true;
                    if let Violation::StaleEntry { switch_id, .. } = v {
                        localized &= switch_id == target_id;
                    } else {
                        localized = false;
                    }
                }
            }
            (detected, detected && localized)
        }
        Fault::BlackHole => {
            let missing = missing_ids(sent, traces);
            // Localization for black holes: the packets that *did* get
            // through before the fault... here the fault exists from
            // t=0, so localization comes from complementary telemetry
            // (e.g. per-switch Queue:PacketsDropped TPP reads); we check
            // detection only.
            (!missing.is_empty(), !missing.is_empty())
        }
    }
}

fn main() {
    println!("ndb detection matrix: {N_PACKETS} traced packets over a {N_SWITCHES}-switch path\n");
    let mut rows = Vec::new();
    for (name, fault) in [
        ("stale rule", Fault::StaleRule),
        ("black hole", Fault::BlackHole),
    ] {
        for position in 0..N_SWITCHES {
            let (detected, localized) = inject_and_detect(fault, position);
            rows.push(vec![
                name.to_string(),
                format!("switch {}", position + 1),
                if detected { "yes" } else { "NO" }.to_string(),
                if localized { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    print_table(&["fault", "injected at", "detected", "localized"], &rows);

    // Sanity row: no fault -> no violations. With `--trace`, this run is
    // the one captured: every switch's pipeline events of the healthy
    // probe traffic, fleet-wide in one stream.
    let trace_to = trace_arg();
    let mut controller = NetworkController::new();
    let dst = EthernetAddress::from_host_id(1);
    let (mut sim, chain) = linear_chain(
        LinearChainParams {
            n_switches: N_SWITCHES,
            ..Default::default()
        },
        Box::new(NdbProbeSender::new(
            dst,
            N_SWITCHES,
            time::micros(50),
            N_PACKETS,
        )),
        Box::new(TraceCollector::default()),
    );
    let entry = controller.new_entry_id();
    for sw in &chain.switches {
        controller.install_rule(
            sim.switch_mut(*sw),
            entry,
            10,
            FlowMatch {
                dst_mac: Some(dst),
                ..Default::default()
            },
            FlowAction::Forward(1),
        );
    }
    let sink = trace_to.as_ref().map(|_| sim.observe().trace_all(65_536));
    sim.run(RunLimit::Until(time::millis(20)));
    let policy = PathPolicy {
        expected_path: (1..=N_SWITCHES as u32).collect(),
        expected_versions: controller.intended_versions_all(),
    };
    let traces = &sim.host_app::<TraceCollector>(chain.right).traces;
    let false_positives: usize = traces.iter().map(|t| policy.verify(t).len()).sum();
    println!(
        "\nhealthy-network false positives: {false_positives} (over {} traces)",
        traces.len()
    );

    if let (Some(path), Some(sink)) = (trace_to, sink) {
        write_trace(&path, &sink.events());
    }
}
