//! Million-flow fat-tree FCT benchmark — the §4 "datacenters"
//! deployment at datacenter scale.
//!
//! Builds the k=8 fat-tree (oversubscribed edge: 32 hosts per ToR →
//! 1024 hosts over 80 switches), drives a seeded traffic matrix with
//! web-search and data-mining flow-size CDFs (over a million flows),
//! and runs the paper's three TPP applications *concurrently over the
//! shared switches*: microburst monitors (§2.1), RCP\* congestion
//! control (§2.2), and ndb path tracing (§2.3). Reports
//! flow-completion-time percentiles by flow-size bucket plus the
//! memory/throughput numbers this benchmark exists to track:
//! sim-time/wall-time ratio, allocations, peak RSS, resident
//! bytes-per-switch, and program-interner sharing.
//!
//! ```console
//! $ cargo run --release -p tpp-bench --bin fct_bench            # full k=8 + smoke, writes BENCH_fct.json
//! $ cargo run --release -p tpp-bench --bin fct_bench -- --smoke # scaled-down k=4 only, prints JSON
//! $ cargo run --release -p tpp-bench --bin fct_bench -- --smoke --check
//! #   ^ CI lane: byte-diffs the smoke fingerprint against the committed
//! #     BENCH_fct.json and enforces the allocation ceiling + perf gate
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use tpp_apps::microburst::MicroburstMonitor;
use tpp_apps::ndb::{NdbProbeSender, TraceCollector};
use tpp_apps::rcpstar::{init_rate_registers, RcpStarConfig, RcpStarSender};
use tpp_asic::PortId;
use tpp_bench::traffic::{
    completions_fingerprint, generate_schedule, percentile, splitmix64, ClosedFlowGenApp,
    ClosedLoopConfig, Completion, FlowGenApp, FlowSizeDist, TrafficConfig,
};
use tpp_host::{EchoReceiver, TransportStats};
use tpp_netsim::{
    fat_tree_with, time, Endpoint, FatTreeParams, HostApp, HostId, RunLimit, SimConfig,
};
use tpp_wire::EthernetAddress;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// One benchmark scenario (the full k=8 run or the k=4 CI smoke).
struct Scenario {
    k: usize,
    hosts_per_edge: usize,
    /// Microburst-monitor, RCP\*, and ndb sender/receiver pairs; they
    /// occupy the first and last host indices (pod 0 → last pod, so
    /// every TPP app crosses the full 5-switch inter-pod path).
    mon_pairs: usize,
    rcp_pairs: usize,
    ndb_pairs: usize,
    traffic: TrafficConfig,
    /// Extra simulated time after the last scheduled flow start, ns.
    drain_ns: u64,
    link_kbps: u32,
    host_nic_kbps: u32,
    queue_limit_bytes: u32,
}

/// Flow-size bucket edges, bytes (post scale/cap — see `TrafficConfig`).
const BUCKETS: &[(&str, u32, u32)] = &[
    ("small", 0, 4 * 1024),
    ("medium", 4 * 1024, 24 * 1024),
    ("large", 24 * 1024, u32::MAX),
];

struct BucketStats {
    dist: &'static str,
    bucket: &'static str,
    n: usize,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

struct ScenarioOut {
    switches: usize,
    hosts: usize,
    flows_total: usize,
    flows_started: u64,
    flows_completed: usize,
    frames_sent: u64,
    sim_ns: u64,
    wall_s: f64,
    events: u64,
    allocs: u64,
    peak_rss_kb: u64,
    fingerprint: u64,
    fct: Vec<BucketStats>,
    bytes_per_switch: usize,
    interner_distinct: usize,
    interner_shared: u64,
    interner_decoded: u64,
    mb_probes: u64,
    mb_samples: usize,
    rcp_completed: usize,
    ndb_sent: usize,
    ndb_traces: usize,
}

fn run_scenario(s: &Scenario) -> ScenarioOut {
    let params = FatTreeParams {
        k: s.k,
        hosts_per_edge: s.hosts_per_edge,
        link_kbps: s.link_kbps,
        queue_limit_bytes: s.queue_limit_bytes,
        delay_ns: time::micros(1),
        host_nic_kbps: s.host_nic_kbps,
    };
    let n_hosts = params.n_hosts();
    let n_special = s.mon_pairs + s.rcp_pairs + s.ndb_pairs;
    assert!(
        n_hosts > 2 * n_special + 1,
        "topology too small for the app mix"
    );
    let mac = |host_index: usize| EthernetAddress::from_host_id(host_index as u32);

    // Flow-generating hosts sit between the special senders (head) and
    // their receivers (tail).
    let fg_range = n_special..n_hosts - n_special;
    let fg_macs: Vec<EthernetAddress> = fg_range.clone().map(mac).collect();

    // Generate every schedule up front: the run length is the last
    // scheduled start plus the drain window.
    let mut schedules = Vec::with_capacity(fg_macs.len());
    let mut flows_total = 0usize;
    let mut last_start = 0u64;
    for fg_idx in 0..fg_macs.len() {
        let dist = if fg_idx % 2 == 0 {
            FlowSizeDist::WebSearch
        } else {
            FlowSizeDist::DataMining
        };
        let sched = generate_schedule(&s.traffic, fg_idx as u32, &fg_macs, dist);
        flows_total += sched.len();
        if let Some(f) = sched.last() {
            last_start = last_start.max(f.start_ns);
        }
        schedules.push(sched);
    }
    let run_ns = last_start + s.drain_ns;

    let mut schedules = schedules.into_iter();
    let apps: Vec<Box<dyn HostApp>> = (0..n_hosts)
        .map(|i| -> Box<dyn HostApp> {
            if i < s.mon_pairs {
                // §2.1 monitor probing the far side of the fabric.
                Box::new(MicroburstMonitor::new(
                    mac(n_hosts - 1 - i),
                    6,
                    25_000,
                    0,
                    run_ns,
                ))
            } else if i < s.mon_pairs + s.rcp_pairs {
                Box::new(RcpStarSender::new(
                    mac(n_hosts - 1 - i),
                    RcpStarConfig {
                        period_ns: time::millis(2),
                        initial_rtt_ns: 100_000,
                        init_rate_bps: 50_000_000,
                        expected_hops: 6,
                        stop_after_bytes: Some(100_000),
                        ..Default::default()
                    },
                ))
            } else if i < n_special {
                Box::new(NdbProbeSender::new(
                    mac(n_hosts - 1 - i),
                    6,
                    200_000,
                    (run_ns / 200_000).min(500) as u32,
                ))
            } else if i < n_hosts - n_special {
                Box::new(FlowGenApp::new(schedules.next().expect("one per host")))
            } else {
                // Mirror of the special sender at `n_hosts - 1 - i`:
                // ndb senders need a TraceCollector, monitors and RCP*
                // senders an echo peer.
                let peer = n_hosts - 1 - i;
                if peer >= s.mon_pairs + s.rcp_pairs {
                    Box::new(TraceCollector::default())
                } else {
                    Box::new(EchoReceiver::default())
                }
            }
        })
        .collect();

    let config = SimConfig::new()
        .shards(1)
        .sequential()
        .tick_interval_ns(time::millis(1))
        .frame_pool_buffers(16 * 1024);
    let (mut sim, tree) = fat_tree_with(config, params.clone(), apps);
    assert!(
        tree.all_hosts().eq((0..n_hosts).map(HostId)),
        "host ids must be dense in (pod, edge, index) order"
    );
    let switches: Vec<_> = tree
        .edges
        .iter()
        .chain(tree.aggs.iter())
        .flatten()
        .copied()
        .chain(tree.cores.iter().copied())
        .collect();
    for sw in &switches {
        init_rate_registers(sim.switch_mut(*sw));
    }

    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    sim.run(RunLimit::Until(run_ns));
    let wall_s = start.elapsed().as_secs_f64();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let peak_rss_kb = peak_rss_kb();

    // Harvest completions from every flow-generating host.
    let mut completions: Vec<Completion> = Vec::with_capacity(flows_total);
    let mut flows_started = 0u64;
    let mut frames_sent = 0u64;
    for i in fg_range {
        let app = sim.host_app::<FlowGenApp>(HostId(i));
        flows_started += app.flows_started;
        frames_sent += app.frames_sent;
        completions.extend_from_slice(&app.completions);
    }
    let fingerprint = completions_fingerprint(completions.iter().copied());

    let mut fct = Vec::new();
    for (dist_name, mining) in [("web_search", false), ("data_mining", true)] {
        for (bucket, lo, hi) in BUCKETS {
            let mut v: Vec<f64> = completions
                .iter()
                .filter(|c| c.mining == mining && c.bytes > *lo && c.bytes <= *hi)
                .map(|c| c.fct_ns as f64 / 1e6)
                .collect();
            v.sort_by(f64::total_cmp);
            fct.push(BucketStats {
                dist: dist_name,
                bucket,
                n: v.len(),
                p50_ms: percentile(&v, 0.5),
                p95_ms: percentile(&v, 0.95),
                p99_ms: percentile(&v, 0.99),
            });
        }
    }

    let (interner_shared, interner_decoded) = sim.program_interner().stats();
    let mut mb_probes = 0;
    let mut mb_samples = 0;
    for i in 0..s.mon_pairs {
        let m = sim.host_app::<MicroburstMonitor>(HostId(i));
        mb_probes += m.probes_sent;
        mb_samples += m.samples.len();
    }
    let rcp_completed = (s.mon_pairs..s.mon_pairs + s.rcp_pairs)
        .filter(|&i| {
            sim.host_app::<RcpStarSender>(HostId(i))
                .completed_at
                .is_some()
        })
        .count();
    let mut ndb_sent = 0;
    let mut ndb_traces = 0;
    for i in 0..s.ndb_pairs {
        let sender = s.mon_pairs + s.rcp_pairs + i;
        ndb_sent += sim
            .host_app::<NdbProbeSender>(HostId(sender))
            .sent_ids
            .len();
        ndb_traces += sim
            .host_app::<TraceCollector>(HostId(n_hosts - 1 - sender))
            .traces
            .len();
    }

    ScenarioOut {
        switches: switches.len(),
        hosts: n_hosts,
        flows_total,
        flows_started,
        flows_completed: completions.len(),
        frames_sent,
        sim_ns: run_ns,
        wall_s,
        events: sim.events_processed(),
        allocs,
        peak_rss_kb,
        fingerprint,
        fct,
        bytes_per_switch: sim.approx_bytes_per_switch(),
        interner_distinct: sim.program_interner().distinct_programs(),
        interner_shared,
        interner_decoded,
        mb_probes,
        mb_samples,
        rcp_completed,
        ndb_sent,
        ndb_traces,
    }
}

fn full_scenario() -> Scenario {
    Scenario {
        k: 8,
        hosts_per_edge: 32,
        mon_pairs: 8,
        rcp_pairs: 8,
        ndb_pairs: 4,
        traffic: TrafficConfig {
            flows_per_host: 1150,
            mean_gap_ns: 110_000,
            ..Default::default()
        },
        drain_ns: time::millis(40),
        link_kbps: 40_000_000,
        host_nic_kbps: 10_000_000,
        queue_limit_bytes: 16 * 1024 * 1024,
    }
}

fn smoke_scenario() -> Scenario {
    Scenario {
        k: 4,
        hosts_per_edge: 0, // textbook k/2 = 2 → 16 hosts, 20 switches
        mon_pairs: 1,
        rcp_pairs: 1,
        ndb_pairs: 1,
        traffic: TrafficConfig {
            flows_per_host: 1000,
            mean_gap_ns: 50_000,
            ..Default::default()
        },
        drain_ns: time::millis(10),
        link_kbps: 40_000_000,
        host_nic_kbps: 10_000_000,
        queue_limit_bytes: 4 * 1024 * 1024,
    }
}

/// The lossy closed-loop scenario: every host runs the loss-recovering
/// transport ([`ClosedFlowGenApp`]) over the ECMP-routed fat-tree, with
/// seeded random loss on every switch-to-switch link direction.
struct ClosedScenario {
    k: usize,
    hosts_per_edge: usize,
    traffic: TrafficConfig,
    /// Per-frame loss on every inter-switch link direction, permille.
    loss_permille: u16,
    drain_ns: u64,
    link_kbps: u32,
    host_nic_kbps: u32,
    queue_limit_bytes: u32,
}

fn closed_scenario() -> ClosedScenario {
    ClosedScenario {
        k: 8,
        hosts_per_edge: 0, // textbook k/2 = 4 -> 128 hosts, 80 switches
        traffic: TrafficConfig {
            flows_per_host: 60,
            mean_gap_ns: 250_000,
            ..Default::default()
        },
        loss_permille: 5,
        drain_ns: time::millis(60),
        link_kbps: 40_000_000,
        host_nic_kbps: 10_000_000,
        queue_limit_bytes: 4 * 1024 * 1024,
    }
}

struct ClosedOut {
    switches: usize,
    hosts: usize,
    flows_total: usize,
    completed: usize,
    unfinished: usize,
    stats: TransportStats,
    fingerprint: u64,
    fct: Vec<BucketStats>,
    offered_mbps: f64,
    goodput_mbps: f64,
    /// Tx-frame counters of every edge-switch uplink (the ports ECMP
    /// spreads over): (min, max, mean, max/mean).
    spread: (u64, u64, f64, f64),
    sim_ns: u64,
    wall_s: f64,
    events: u64,
}

/// One closed-loop run at a given shard count/driver. The returned
/// fingerprint folds per-flow FCTs *and* the recovery counters, so the
/// shard matrix proves the whole closed loop is bit-identical, not just
/// the completions.
fn run_closed(s: &ClosedScenario, shards: usize, sequential: bool) -> ClosedOut {
    let params = FatTreeParams {
        k: s.k,
        hosts_per_edge: s.hosts_per_edge,
        link_kbps: s.link_kbps,
        queue_limit_bytes: s.queue_limit_bytes,
        delay_ns: time::micros(1),
        host_nic_kbps: s.host_nic_kbps,
    };
    let n_hosts = params.n_hosts();
    let macs: Vec<EthernetAddress> = (0..n_hosts)
        .map(|i| EthernetAddress::from_host_id(i as u32))
        .collect();

    let mut flows_total = 0usize;
    let mut offered_bytes = 0u64;
    let mut last_start = 0u64;
    let mut schedules = Vec::with_capacity(n_hosts);
    for i in 0..n_hosts {
        let dist = if i % 2 == 0 {
            FlowSizeDist::WebSearch
        } else {
            FlowSizeDist::DataMining
        };
        let sched = generate_schedule(&s.traffic, i as u32, &macs, dist);
        flows_total += sched.len();
        offered_bytes += sched.iter().map(|f| f.bytes as u64).sum::<u64>();
        if let Some(f) = sched.last() {
            last_start = last_start.max(f.start_ns);
        }
        schedules.push(sched);
    }
    let run_ns = last_start + s.drain_ns;

    let apps: Vec<Box<dyn HostApp>> = schedules
        .into_iter()
        .map(|sched| -> Box<dyn HostApp> {
            Box::new(ClosedFlowGenApp::new(sched, ClosedLoopConfig::default()))
        })
        .collect();
    let mut config = SimConfig::new()
        .shards(shards)
        .ecmp(true)
        .tick_interval_ns(time::millis(1))
        .frame_pool_buffers(16 * 1024);
    if sequential {
        config = config.sequential();
    }
    let (mut sim, tree) = fat_tree_with(config, params.clone(), apps);

    let half = s.k / 2;
    let hpe = params.effective_hosts_per_edge();
    let switches: Vec<_> = tree
        .edges
        .iter()
        .chain(tree.aggs.iter())
        .flatten()
        .copied()
        .chain(tree.cores.iter().copied())
        .collect();
    for sw in &switches {
        init_rate_registers(sim.switch_mut(*sw));
    }
    // Seeded loss on every inter-switch link direction: edge uplinks,
    // all agg ports (down + up), all core ports. Host links stay clean,
    // so loss recovery is the transport's job, not the NIC's.
    for pod in tree.edges.iter() {
        for edge in pod {
            for a in 0..half {
                sim.set_link_loss(
                    Endpoint::switch(*edge, (hpe + a) as PortId),
                    s.loss_permille,
                );
            }
        }
    }
    for pod in tree.aggs.iter() {
        for agg in pod {
            for p in 0..s.k {
                sim.set_link_loss(Endpoint::switch(*agg, p as PortId), s.loss_permille);
            }
        }
    }
    for core in &tree.cores {
        for p in 0..s.k {
            sim.set_link_loss(Endpoint::switch(*core, p as PortId), s.loss_permille);
        }
    }

    let start = Instant::now();
    sim.run(RunLimit::Until(run_ns));
    let wall_s = start.elapsed().as_secs_f64();

    let mut completions: Vec<Completion> = Vec::with_capacity(flows_total);
    let mut stats = TransportStats::default();
    let mut unfinished = 0usize;
    for i in 0..n_hosts {
        let app = sim.host_app::<ClosedFlowGenApp>(HostId(i));
        completions.extend_from_slice(&app.completions);
        stats.merge(&app.stats_snapshot());
        unfinished += app.unfinished();
    }
    let mut fingerprint = completions_fingerprint(completions.iter().copied());
    fingerprint ^= splitmix64(
        stats
            .retransmits
            .wrapping_add(stats.rto_fires.rotate_left(17))
            .wrapping_add(stats.fast_retransmits.rotate_left(34))
            .wrapping_add(stats.flows_given_up.rotate_left(51)),
    );

    let mut fct = Vec::new();
    for (dist_name, mining) in [("web_search", false), ("data_mining", true)] {
        for (bucket, lo, hi) in BUCKETS {
            let mut v: Vec<f64> = completions
                .iter()
                .filter(|c| c.mining == mining && c.bytes > *lo && c.bytes <= *hi)
                .map(|c| c.fct_ns as f64 / 1e6)
                .collect();
            v.sort_by(f64::total_cmp);
            fct.push(BucketStats {
                dist: dist_name,
                bucket,
                n: v.len(),
                p50_ms: percentile(&v, 0.5),
                p95_ms: percentile(&v, 0.95),
                p99_ms: percentile(&v, 0.99),
            });
        }
    }

    let uplinks: Vec<u64> = tree
        .edges
        .iter()
        .flatten()
        .flat_map(|edge| {
            (0..half).map(move |a| (edge, a)) // each edge's uplink ports
        })
        .map(|(edge, a)| sim.link_tx_frames(Endpoint::switch(*edge, (hpe + a) as PortId)))
        .collect();
    let spread_min = uplinks.iter().copied().min().unwrap_or(0);
    let spread_max = uplinks.iter().copied().max().unwrap_or(0);
    let spread_mean = uplinks.iter().sum::<u64>() as f64 / uplinks.len().max(1) as f64;
    let max_over_mean = if spread_mean > 0.0 {
        spread_max as f64 / spread_mean
    } else {
        0.0
    };

    let goodput_bytes: u64 = completions.iter().map(|c| c.bytes as u64).sum();
    ClosedOut {
        switches: switches.len(),
        hosts: n_hosts,
        flows_total,
        completed: completions.len(),
        unfinished,
        stats,
        fingerprint,
        fct,
        offered_mbps: offered_bytes as f64 * 8.0 / (run_ns as f64 / 1e9) / 1e6,
        goodput_mbps: goodput_bytes as f64 * 8.0 / (run_ns as f64 / 1e9) / 1e6,
        spread: (spread_min, spread_max, spread_mean, max_over_mean),
        sim_ns: run_ns,
        wall_s,
        events: sim.events_processed(),
    }
}

/// The shard-invariance matrix the acceptance gate runs: the same
/// closed-loop scenario at 1/2/4 shards, threaded and sequential, must
/// produce bit-identical fingerprints.
const CLOSED_MATRIX: &[(&str, usize, bool)] = &[
    ("1_shard_seq", 1, true),
    ("2_shards_threaded", 2, false),
    ("4_shards_threaded", 4, false),
    ("4_shards_seq", 4, true),
];

fn run_closed_matrix(s: &ClosedScenario) -> (ClosedOut, Vec<(&'static str, u64)>) {
    let mut outs = Vec::new();
    for (name, shards, sequential) in CLOSED_MATRIX {
        let out = run_closed(s, *shards, *sequential);
        println!(
            "closed[{name:<17}] {}/{} flows completed, {} retransmits \
             ({} RTO, {} fast), fingerprint 0x{:016x} in {:.2} s wall",
            out.completed,
            out.flows_total,
            out.stats.retransmits,
            out.stats.rto_fires,
            out.stats.fast_retransmits,
            out.fingerprint,
            out.wall_s,
        );
        outs.push((*name, out));
    }
    let base_fp = outs[0].1.fingerprint;
    for (name, out) in &outs {
        assert_eq!(
            out.fingerprint, base_fp,
            "{name}: closed-loop run diverged from the 1-shard baseline"
        );
    }
    let matrix = outs.iter().map(|(n, o)| (*n, o.fingerprint)).collect();
    let out = outs.swap_remove(0).1;
    assert!(
        out.completed * 100 >= out.flows_total * 99,
        "closed loop must complete >= 99% of flows under loss (got {}/{})",
        out.completed,
        out.flows_total
    );
    assert!(
        out.stats.retransmits > 0,
        "a lossy run that never retransmits is not exercising recovery"
    );
    (out, matrix)
}

fn closed_json(s: &ClosedScenario, out: &ClosedOut, matrix: &[(&'static str, u64)]) -> String {
    let rows: Vec<String> = matrix
        .iter()
        .map(|(name, fp)| {
            format!("      {{\"run\": \"{name}\", \"fingerprint\": \"0x{fp:016x}\"}}")
        })
        .collect();
    let (sp_min, sp_max, sp_mean, sp_ratio) = out.spread;
    format!(
        "  \"closed_loop\": {{\n\
         \x20   \"k\": {}, \"switches\": {}, \"hosts\": {}, \"loss_permille\": {},\n\
         \x20   \"flows_total\": {}, \"flows_completed\": {}, \"flows_given_up\": {}, \"unfinished\": {},\n\
         \x20   \"segments_sent\": {}, \"retransmits\": {}, \"rto_fires\": {}, \"fast_retransmits\": {},\n\
         \x20   \"acks_sent\": {}, \"dup_segments_rx\": {}, \"probes_sent\": {}, \"rate_updates\": {},\n\
         \x20   \"offered_mbps\": {:.1}, \"goodput_mbps\": {:.1},\n\
         \x20   \"sim_ms\": {:.3}, \"wall_s\": {:.3}, \"events\": {},\n\
         \x20   \"path_spread\": {{\"uplinks\": {}, \"min_tx\": {}, \"max_tx\": {}, \
         \"mean_tx\": {:.1}, \"max_over_mean\": {:.3}}},\n\
         \x20   \"fingerprint\": \"0x{:016x}\",\n\
         \x20   \"shard_matrix\": [\n{}\n    ],\n\
         \x20   \"fct_ms\": [\n{}\n    ]\n  }}",
        s.k,
        out.switches,
        out.hosts,
        s.loss_permille,
        out.flows_total,
        out.completed,
        out.stats.flows_given_up,
        out.unfinished,
        out.stats.segments_sent,
        out.stats.retransmits,
        out.stats.rto_fires,
        out.stats.fast_retransmits,
        out.stats.acks_sent,
        out.stats.dup_segments_rx,
        out.stats.probes_sent,
        out.stats.rate_updates,
        out.offered_mbps,
        out.goodput_mbps,
        out.sim_ns as f64 / 1e6,
        out.wall_s,
        out.events,
        s.k * (s.k / 2) * (s.k / 2), // edge switches x uplinks each
        sp_min,
        sp_max,
        sp_mean,
        sp_ratio,
        out.fingerprint,
        rows.join(",\n"),
        fct_json_closed(out)
    )
}

fn fct_json_closed(out: &ClosedOut) -> String {
    let rows: Vec<String> = out
        .fct
        .iter()
        .map(|b| {
            format!(
                "      {{\"dist\": \"{}\", \"bucket\": \"{}\", \"n\": {}, \
                 \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}",
                b.dist, b.bucket, b.n, b.p50_ms, b.p95_ms, b.p99_ms
            )
        })
        .collect();
    rows.join(",\n")
}

fn check_closed_against_committed(out: &ClosedOut) -> i32 {
    let path = "BENCH_fct.json";
    let committed = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("check: cannot read {path}: {e}");
            return 2;
        }
    };
    let got_fp = format!("0x{:016x}", out.fingerprint);
    match json_scalar(&committed, "closed_loop", "fingerprint") {
        Some(want) if want == got_fp => {
            println!("check: closed-loop fingerprint {got_fp} matches");
            0
        }
        Some(want) => {
            eprintln!("check: CLOSED-LOOP FINGERPRINT MISMATCH: committed {want}, got {got_fp}");
            1
        }
        None => {
            eprintln!("check: no closed_loop fingerprint in {path}");
            1
        }
    }
}

fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches(" kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

fn fct_json(out: &ScenarioOut) -> String {
    let rows: Vec<String> = out
        .fct
        .iter()
        .map(|b| {
            format!(
                "      {{\"dist\": \"{}\", \"bucket\": \"{}\", \"n\": {}, \
                 \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}",
                b.dist, b.bucket, b.n, b.p50_ms, b.p95_ms, b.p99_ms
            )
        })
        .collect();
    rows.join(",\n")
}

fn scenario_json(name: &str, s: &Scenario, out: &ScenarioOut) -> String {
    let hpe = s.hosts_per_edge.max(s.k / 2);
    format!(
        "  \"{name}\": {{\n\
         \x20   \"k\": {}, \"hosts_per_edge\": {}, \"switches\": {}, \"hosts\": {},\n\
         \x20   \"flows_total\": {}, \"flows_started\": {}, \"flows_completed\": {},\n\
         \x20   \"frames_sent\": {}, \"size_scale_div\": {}, \"cap_bytes\": {},\n\
         \x20   \"sim_ms\": {:.3}, \"wall_s\": {:.3}, \"sim_wall_ratio\": {:.4},\n\
         \x20   \"events\": {}, \"events_per_sec\": {:.0},\n\
         \x20   \"allocations\": {}, \"peak_rss_kb\": {}, \"bytes_per_switch\": {},\n\
         \x20   \"interner\": {{\"distinct_programs\": {}, \"shared_hits\": {}, \"decodes\": {}}},\n\
         \x20   \"tpp_apps\": {{\"microburst_probes\": {}, \"microburst_samples\": {}, \
         \"rcp_flows_completed\": {}, \"ndb_probes\": {}, \"ndb_traces\": {}}},\n\
         \x20   \"fingerprint\": \"0x{:016x}\",\n\
         \x20   \"fct_ms\": [\n{}\n    ]\n  }}",
        s.k,
        hpe,
        out.switches,
        out.hosts,
        out.flows_total,
        out.flows_started,
        out.flows_completed,
        out.frames_sent,
        s.traffic.size_scale_div,
        s.traffic.cap_bytes,
        out.sim_ns as f64 / 1e6,
        out.wall_s,
        out.sim_ns as f64 / 1e9 / out.wall_s,
        out.events,
        out.events as f64 / out.wall_s,
        out.allocs,
        out.peak_rss_kb,
        out.bytes_per_switch,
        out.interner_distinct,
        out.interner_shared,
        out.interner_decoded,
        out.mb_probes,
        out.mb_samples,
        out.rcp_completed,
        out.ndb_sent,
        out.ndb_traces,
        out.fingerprint,
        fct_json(out)
    )
}

fn summary(name: &str, out: &ScenarioOut) {
    println!(
        "{name}: {} switches, {} hosts | {} / {} flows completed ({} frames) | \
         sim {:.1} ms in {:.2} s wall ({} events, {:.0}/s) | \
         {} allocs | {} B/switch | interner {} programs, {} shared / {} decoded",
        out.switches,
        out.hosts,
        out.flows_completed,
        out.flows_total,
        out.frames_sent,
        out.sim_ns as f64 / 1e6,
        out.wall_s,
        out.events,
        out.events as f64 / out.wall_s,
        out.allocs,
        out.bytes_per_switch,
        out.interner_distinct,
        out.interner_shared,
        out.interner_decoded
    );
}

/// Pull a `"field": value` scalar out of the committed JSON (no JSON
/// dependency in the workspace; the file is machine-written, so plain
/// string scanning within the named section is reliable).
fn json_scalar<'a>(doc: &'a str, section: &str, field: &str) -> Option<&'a str> {
    let sec = doc.find(&format!("\"{section}\""))?;
    let rest = &doc[sec..];
    let f = rest.find(&format!("\"{field}\""))?;
    let rest = &rest[f..];
    let colon = rest.find(':')?;
    let val = rest[colon + 1..].trim_start();
    let end = val.find([',', '\n', '}']).unwrap_or(val.len());
    Some(val[..end].trim().trim_matches('"'))
}

fn check_against_committed(out: &ScenarioOut) -> i32 {
    let path = "BENCH_fct.json";
    let committed = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("check: cannot read {path}: {e}");
            return 2;
        }
    };
    let mut failures = 0;
    let got_fp = format!("0x{:016x}", out.fingerprint);
    match json_scalar(&committed, "smoke", "fingerprint") {
        Some(want) if want == got_fp => println!("check: fingerprint {got_fp} matches"),
        Some(want) => {
            eprintln!("check: FINGERPRINT MISMATCH: committed {want}, got {got_fp}");
            failures += 1;
        }
        None => {
            eprintln!("check: no smoke fingerprint in {path}");
            failures += 1;
        }
    }
    // Allocation ceiling: 1.25x the committed count, so a reintroduced
    // per-frame or per-window allocation fails the lane.
    if let Some(base) =
        json_scalar(&committed, "smoke", "allocations").and_then(|v| v.parse::<u64>().ok())
    {
        let ceiling = base + base / 4;
        if out.allocs <= ceiling {
            println!("check: allocations {} <= ceiling {ceiling}", out.allocs);
        } else {
            eprintln!(
                "check: ALLOCATION REGRESSION: {} > ceiling {ceiling} (committed {base})",
                out.allocs
            );
            failures += 1;
        }
    }
    // Perf gate: >= 0.9x the committed event rate (wall-clock; noisy
    // runners can widen it via TPP_FCT_PERF_MARGIN, e.g. "0.5").
    if let Some(base) =
        json_scalar(&committed, "smoke", "events_per_sec").and_then(|v| v.parse::<f64>().ok())
    {
        let margin: f64 = std::env::var("TPP_FCT_PERF_MARGIN")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.9);
        let got = out.events as f64 / out.wall_s;
        if got >= base * margin {
            println!("check: {got:.0} events/s >= {margin}x committed {base:.0}");
        } else {
            eprintln!("check: PERF REGRESSION: {got:.0} events/s < {margin}x committed {base:.0}");
            failures += 1;
        }
    }
    if failures > 0 {
        1
    } else {
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke_only = args.iter().any(|a| a == "--smoke");
    let closed_only = args.iter().any(|a| a == "--closed-loop");
    let check = args.iter().any(|a| a == "--check");

    if closed_only {
        // The lossy closed-loop lane: run the full shard matrix (the
        // fingerprint equality + >= 99% completion gates live inside).
        let closed = closed_scenario();
        let (closed_out, matrix) = run_closed_matrix(&closed);
        if check {
            std::process::exit(check_closed_against_committed(&closed_out));
        }
        println!("{{\n{}\n}}", closed_json(&closed, &closed_out, &matrix));
        return;
    }

    let smoke = smoke_scenario();
    let smoke_out = run_scenario(&smoke);
    summary("smoke(k=4)", &smoke_out);

    if check {
        std::process::exit(check_against_committed(&smoke_out));
    }
    if smoke_only {
        println!("{{\n{}\n}}", scenario_json("smoke", &smoke, &smoke_out));
        return;
    }

    let full = full_scenario();
    let full_out = run_scenario(&full);
    summary("full(k=8)", &full_out);
    assert!(
        full_out.flows_completed >= 1_000_000,
        "datacenter run must complete at least a million flows (got {})",
        full_out.flows_completed
    );

    let closed = closed_scenario();
    let (closed_out, matrix) = run_closed_matrix(&closed);

    let doc = format!(
        "{{\n  \"bench\": \"fct\",\n{},\n{},\n{}\n}}\n",
        scenario_json("full", &full, &full_out),
        scenario_json("smoke", &smoke, &smoke_out),
        closed_json(&closed, &closed_out, &matrix)
    );
    std::fs::write("BENCH_fct.json", &doc).unwrap_or_else(|e| {
        eprintln!("cannot write BENCH_fct.json: {e}");
        std::process::exit(2);
    });
    println!("wrote BENCH_fct.json");
}
