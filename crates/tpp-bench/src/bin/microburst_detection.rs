//! §2.1 reproduction — micro-burst detection: TPP per-packet telemetry
//! vs. control-plane polling at several rates, against ground truth.
//!
//! Prints a detection table: how many of the injected bursts each
//! observer finds as its sampling interval coarsens. The paper's claim is
//! the two ends of this table: per-RTT TPP probing sees (nearly) all
//! bursts; "today's monitoring mechanisms" at 10s-of-seconds scale see none.

use tpp_apps::{detect_bursts, MicroburstMonitor};
use tpp_bench::{print_table, trace_arg, write_trace};
use tpp_host::{EchoReceiver, DATA_ETHERTYPE};
use tpp_netsim::RunLimit;
use tpp_netsim::{dumbbell, time, DumbbellParams, HostApp, HostCtx};
use tpp_wire::ethernet::build_frame;
use tpp_wire::EthernetAddress;

struct Burster {
    victim: EthernetAddress,
    frames: usize,
    period_ns: u64,
    remaining: u32,
}

impl HostApp for Burster {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_timer(self.period_ns, 0);
    }
    fn on_timer(&mut self, _t: u64, ctx: &mut HostCtx<'_>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        for _ in 0..self.frames {
            ctx.send(build_frame(
                self.victim,
                ctx.mac(),
                DATA_ETHERTYPE,
                &[0u8; 1400],
            ));
        }
        ctx.set_timer(self.period_ns, 0);
    }
}

const THRESHOLD: u64 = 5_000;
const N_BURSTS: u32 = 40;
const RUN_MS: u64 = 90;

fn main() {
    // 100 Mb/s bottleneck; 20 KB bursts every 2 ms drain in ~1.6 ms.
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = vec![
        (
            Box::new(Burster {
                victim: EthernetAddress::from_host_id(1),
                frames: 14,
                period_ns: time::millis(2),
                remaining: N_BURSTS,
            }),
            Box::new(EchoReceiver::default()),
        ),
        (
            Box::new(MicroburstMonitor::new(
                EthernetAddress::from_host_id(3),
                2,
                time::micros(53), // co-prime with the burst period
                0,
                time::millis(RUN_MS),
            )),
            Box::new(EchoReceiver::default()),
        ),
    ];
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: 2,
            bottleneck_kbps: 100_000,
            edge_kbps: 1_000_000,
            host_nic_kbps: 1_000_000,
            ..Default::default()
        },
        apps,
    );
    // With `--trace`, capture the most recent pipeline events fleet-wide
    // (bounded ring: this run processes hundreds of thousands of frames).
    let trace_to = trace_arg();
    let sink = trace_to.as_ref().map(|_| sim.observe().trace_all(65_536));

    // Ground truth + pollers at several rates, all sampled in one pass.
    let poll_intervals_ns: Vec<(String, u64)> = vec![
        ("oracle 10 µs".into(), time::micros(10)),
        ("poll 1 ms".into(), time::millis(1)),
        ("poll 10 ms".into(), time::millis(10)),
        ("poll 100 ms".into(), time::millis(100)),
        ("poll 10 s (paper's 'today')".into(), time::secs(10)),
    ];
    let mut series: Vec<Vec<(u64, u64)>> = vec![Vec::new(); poll_intervals_ns.len()];
    let step = time::micros(10);
    let mut t = 0;
    while t < time::millis(RUN_MS) {
        t += step;
        sim.run(RunLimit::Until(t));
        let q = sim
            .switch(bell.left)
            .queue_len_bytes(bell.bottleneck_port, 0);
        for (i, (_, interval)) in poll_intervals_ns.iter().enumerate() {
            if t % interval == 0 {
                series[i].push((t, q));
            }
        }
    }

    let monitor = sim.host_app::<MicroburstMonitor>(bell.senders[1]);
    let tpp_series = monitor.series_for(1); // switch 1 owns the bottleneck
    let tpp_bursts = detect_bursts(&tpp_series, THRESHOLD, time::micros(300));

    println!(
        "workload: {N_BURSTS} bursts of ~20 KB every 2 ms into a 100 Mb/s link over {RUN_MS} ms"
    );
    println!("burst duration ~1.6 ms; detection threshold {THRESHOLD} B\n");

    let mut rows = Vec::new();
    let truth_bursts = detect_bursts(&series[0], THRESHOLD, time::micros(300));
    rows.push(vec![
        "ground truth (oracle)".into(),
        "10 µs".into(),
        series[0].len().to_string(),
        truth_bursts.len().to_string(),
    ]);
    rows.push(vec![
        "TPP monitor (§2.1)".into(),
        "53 µs/probe".into(),
        tpp_series.len().to_string(),
        tpp_bursts.len().to_string(),
    ]);
    for (i, (name, interval)) in poll_intervals_ns.iter().enumerate().skip(1) {
        let bursts = detect_bursts(&series[i], THRESHOLD, 2 * interval);
        rows.push(vec![
            name.clone(),
            format!("{} ms", interval / 1_000_000),
            series[i].len().to_string(),
            bursts.len().to_string(),
        ]);
    }
    print_table(
        &["observer", "interval", "samples", "bursts detected"],
        &rows,
    );

    println!("\nTPP burst log (first 5):");
    for b in tpp_bursts.iter().take(5) {
        println!(
            "  t = {:.3}..{:.3} ms, peak {} B",
            b.start_ns as f64 / 1e6,
            b.end_ns as f64 / 1e6,
            b.peak_bytes
        );
    }
    println!(
        "\nprobe overhead: {} probes x {} B = {} B over {RUN_MS} ms ({:.3}% of link)",
        monitor.probes_sent,
        54,
        monitor.probes_sent * 54,
        monitor.probes_sent as f64 * 54.0 * 8.0 / (100e6 * RUN_MS as f64 / 1e3) * 100.0
    );

    if let (Some(path), Some(sink)) = (trace_to, sink) {
        if sink.shed() > 0 {
            println!("(ring buffer shed {} older events)", sink.shed());
        }
        write_trace(&path, &sink.events());
    }
}
