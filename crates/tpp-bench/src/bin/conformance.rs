//! Differential conformance driver: replay the committed corpus, then
//! fuzz freshly generated cases through `tpp-asic` (caches on and off)
//! and the `tpp-spec` reference semantics in lock step.
//!
//! ```text
//! conformance [--cases N] [--seed S] [--corpus DIR] [--skip-replay]
//!             [--write-corpus]
//! ```
//!
//! * `--cases N`       fuzz N generated cases (default 500; CI uses 10000)
//! * `--seed S`        first case seed (default 0)
//! * `--corpus DIR`    corpus directory (default `tests/corpus`)
//! * `--skip-replay`   skip the corpus replay phase
//! * `--write-corpus`  (re)write the directed cases into the corpus
//!   dir and exit
//!
//! Exit status is non-zero on any divergence; the diverging case is
//! minimized and written to `divergence-<seed>.json` in the corpus
//! directory so it can be committed as a regression witness.

use tpp_bench::conformance::{
    default_corpus_dir, directed_cases, fuzz, load_corpus, run_case, write_case,
};
use tpp_bench::print_table;

fn main() {
    let mut cases: u64 = 500;
    let mut seed0: u64 = 0;
    let mut corpus_dir = default_corpus_dir();
    let mut skip_replay = false;
    let mut write_corpus = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cases" => {
                cases = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cases needs a number");
            }
            "--seed" => {
                seed0 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--corpus" => {
                corpus_dir = args.next().expect("--corpus needs a path").into();
            }
            "--skip-replay" => skip_replay = true,
            "--write-corpus" => write_corpus = true,
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    if write_corpus {
        for case in directed_cases() {
            run_case(&case)
                .unwrap_or_else(|e| panic!("refusing to write diverging case {}: {e}", case.name));
            let path = corpus_dir.join(format!("{}.json", case.name));
            write_case(&path, &case).expect("write corpus case");
            println!("wrote {}", path.display());
        }
        return;
    }

    let mut rows = Vec::new();
    let mut failed = false;

    if !skip_replay {
        match load_corpus(&corpus_dir) {
            Ok(corpus) => {
                let mut ok = 0usize;
                for (label, case) in &corpus {
                    match run_case(case) {
                        Ok(_) => ok += 1,
                        Err(e) => {
                            failed = true;
                            eprintln!("corpus case {label} ({}) diverged:\n{e}", case.name);
                        }
                    }
                }
                rows.push(vec![
                    "corpus replay".to_string(),
                    format!("{ok}/{}", corpus.len()),
                    if ok == corpus.len() { "ok" } else { "DIVERGED" }.to_string(),
                ]);
            }
            Err(e) => {
                failed = true;
                eprintln!("corpus load failed: {e}");
            }
        }
    }

    match fuzz(seed0, cases) {
        Ok(stats) => {
            rows.push(vec![
                "fuzz cases".to_string(),
                format!("{}", stats.cases),
                "ok".to_string(),
            ]);
            rows.push(vec![
                "  rounds simulated".to_string(),
                format!("{}", stats.rounds),
                String::new(),
            ]);
            rows.push(vec![
                "  TCPU-executed rounds".to_string(),
                format!("{}", stats.executed_rounds),
                String::new(),
            ]);
            rows.push(vec![
                "  queue-full drops".to_string(),
                format!("{}", stats.dropped_cases),
                String::new(),
            ]);
        }
        Err(d) => {
            failed = true;
            eprintln!("case {} diverged:\n{}", d.case.name, d.error);
            let path = corpus_dir.join(format!("divergence-{}.json", d.case.name));
            match write_case(&path, &d.minimized) {
                Ok(()) => eprintln!("minimized witness written to {}", path.display()),
                Err(e) => eprintln!("could not write witness: {e}"),
            }
            eprintln!("minimized case:\n{}", d.minimized.to_json().pretty());
        }
    }

    print_table(&["phase", "count", "status"], &rows);
    if failed {
        std::process::exit(1);
    }
}
