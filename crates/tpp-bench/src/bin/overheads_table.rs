//! §3.3 "Overheads" reproduction — the paper's arithmetic, recomputed
//! from the implementation's actual constants:
//!
//! * one instruction = one 4-byte integer;
//! * 5 instructions ⇒ 20 bytes of instruction overhead per packet;
//! * 5 instructions × 8-byte values ⇒ 40 bytes of packet memory per hop;
//! * a TPP of n instructions costs 4 + n TCPU cycles (5-stage pipeline,
//!   1 instruction/cycle) — "less than a packet's transmission time";
//! * a 64-port 10GbE switch must process ~1 B packets/s at line rate;
//!   the 300 ns cut-through budget of a 1 GHz ASIC is 300 cycles.

use tpp_asic::tcpu::cycles_for;
use tpp_bench::print_table;
use tpp_isa::assemble;
use tpp_wire::tpp::{AddressingMode, TppBuilder, TppPacket, TPP_HEADER_LEN};

fn main() {
    println!("§3.3 overhead accounting (measured from the implementation)\n");

    // --- Instruction encoding overhead, measured by building packets ---
    let mut rows = Vec::new();
    for n in [1usize, 3, 5, 8, 16] {
        let program = assemble(&"NOP\n".repeat(n)).unwrap();
        let words = program.encode_words().unwrap();
        let bytes = TppBuilder::new(AddressingMode::Stack)
            .instructions(&words)
            .memory_words(0)
            .build();
        let tpp = TppPacket::new_checked(&bytes[..]).unwrap();
        rows.push(vec![
            n.to_string(),
            tpp.insn_len().to_string(),
            (TPP_HEADER_LEN).to_string(),
            tpp.tpp_len().to_string(),
            cycles_for(n as u32).to_string(),
        ]);
    }
    print_table(
        &[
            "instructions",
            "insn bytes",
            "header bytes",
            "TPP bytes",
            "TCPU cycles",
        ],
        &rows,
    );
    let five_insn_bytes = 5 * tpp_wire::tpp::WORD_SIZE;
    println!(
        "\npaper check: 5 instructions -> {five_insn_bytes} bytes of instructions  [{}]",
        if five_insn_bytes == 20 { "OK" } else { "FAIL" }
    );

    // --- Per-hop packet memory for 8-byte (2-word) values ---
    let per_hop_bytes = 5 * 2 * 4;
    println!(
        "paper check: 5 instr x 8-byte values -> {per_hop_bytes} bytes/hop      [{}]",
        if per_hop_bytes == 40 { "OK" } else { "FAIL" }
    );

    // --- Line-rate budget ---
    println!("\nline-rate budget:");
    let ports = 64u64;
    let gbps = 10u64;
    // Minimum-sized Ethernet frame on the wire: 64 B + 20 B IFG/preamble.
    let pps = ports * gbps * 1_000_000_000 / ((64 + 20) * 8);
    println!(
        "  64-port 10GbE, 64 B packets: {:.2} B packets/s (paper: ~1 B/s)",
        pps as f64 / 1e9
    );
    let budget = 300u32;
    println!("  300 ns cut-through @ 1 GHz = {budget} cycles");
    let rows: Vec<Vec<String>> = [1u32, 5, 16, 64]
        .iter()
        .map(|n| {
            let c = cycles_for(*n);
            vec![
                n.to_string(),
                c.to_string(),
                format!("{:.1}%", 100.0 * c as f64 / budget as f64),
                if c <= budget {
                    "fits".into()
                } else {
                    "exceeds".into()
                },
            ]
        })
        .collect();
    print_table(&["instructions", "cycles", "% of budget", "verdict"], &rows);

    // --- Execution vs transmission time ---
    println!("\nexecution vs. transmission time (1 GHz TCPU, 1 cycle = 1 ns):");
    let rows: Vec<Vec<String>> = [
        (64usize, 10_000_000u32),
        (64, 1_000_000),
        (1514, 10_000_000),
    ]
    .iter()
    .map(|(size, kbps)| {
        let tx_ns = tpp_netsim::time::tx_time_ns(*size, *kbps);
        let exec_ns = cycles_for(5) as u64;
        vec![
            format!("{size} B @ {} Gb/s", kbps / 1_000_000),
            format!("{tx_ns} ns"),
            format!("{exec_ns} ns"),
            if exec_ns <= tx_ns {
                "pipelineable".into()
            } else {
                "stalls".into()
            },
        ]
    })
    .collect();
    print_table(&["packet", "tx time", "5-instr exec", "verdict"], &rows);
    println!("\n(the TCPU is pipelined with other modules, so a handful of");
    println!(" instructions never adds latency beyond the cut-through budget)");
}
