//! Flow-completion-time comparison — the motivation the paper opens
//! with: "Rate Control Protocol (RCP) is a congestion-control mechanism
//! that uses link utilization and average queue sizes to allocate
//! bandwidth to flows rapidly so they converge quickly to their max-min
//! fair rates" — i.e. short flows finish fast because they start at the
//! advertised fair rate instead of probing for it.
//!
//! Workload: a heavy-tailed mix — many mice (40 KB) among a few
//! elephants (1.5 MB) — with staggered deterministic arrivals on the
//! 10 Mb/s dumbbell. The interesting number is the *mice's* FCT: an
//! AIMD mouse spends its whole life probing below its fair rate and
//! queueing behind elephant-built backlogs, while an RCP\* mouse is
//! handed the fair rate by its first collect echo and sees near-empty
//! queues. (For equal-size flows, fair sharing famously does *not* beat
//! unfair AIMD on mean FCT — the win is specifically the tail of small
//! flows, which is what datacenter workloads are made of.)

use tpp_apps::rcpstar::{init_rate_registers, RcpStarConfig, RcpStarSender};
use tpp_bench::print_table;
use tpp_host::EchoReceiver;
use tpp_netsim::RunLimit;
use tpp_netsim::{dumbbell, time, DumbbellParams, HostApp};
use tpp_rcp_ref::aimd::{AimdAcker, AimdConfig, AimdSender};
use tpp_wire::EthernetAddress;

const N_MICE: usize = 24;
const MOUSE_BYTES: u64 = 40_000; // 40 KB
const N_ELEPHANTS: usize = 4;
const ELEPHANT_BYTES: u64 = 1_500_000; // 1.5 MB
const N_FLOWS: usize = N_MICE + N_ELEPHANTS;
const RUN_S: u64 = 40;

/// The shared workload: `(start_ns, flow_bytes)` per flow. Elephants
/// arrive early (indices spread through the mice) so mice experience a
/// loaded network. Deterministic golden-ratio spacing keeps both systems
/// on identical arrivals.
fn arrivals() -> Vec<(u64, u64)> {
    let mut t = 0u64;
    let mut out = Vec::new();
    for i in 0..N_FLOWS {
        let u = ((i as f64 * 0.618_033_988_75) % 1.0).max(1e-3);
        let gap_s = -(u.ln()) * 0.3; // Exp(mean 0.3 s)
        t += (gap_s * 1e9) as u64;
        // Every 7th flow is an elephant (indices 0, 7, 14, 21).
        let bytes = if i % 7 == 0 {
            ELEPHANT_BYTES
        } else {
            MOUSE_BYTES
        };
        out.push((t, bytes));
    }
    out
}

struct FctStats {
    /// `(flow_bytes, fct_ms)` for completed flows.
    done: Vec<(u64, f64)>,
    unfinished: usize,
}

impl FctStats {
    fn class(&self, bytes: u64) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .done
            .iter()
            .filter(|(b, _)| *b == bytes)
            .map(|(_, f)| *f)
            .collect();
        v.sort_by(f64::total_cmp);
        v
    }
    fn mean(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len().max(1) as f64
    }
    fn pct(v: &[f64], p: f64) -> f64 {
        if v.is_empty() {
            return f64::NAN;
        }
        v[((v.len() - 1) as f64 * p).round() as usize]
    }
}

fn run_rcpstar() -> FctStats {
    let flows = arrivals();
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = flows
        .iter()
        .enumerate()
        .map(|(i, (start, bytes))| {
            let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
            let cfg = RcpStarConfig {
                start_ns: *start,
                stop_after_bytes: Some(*bytes),
                ..Default::default()
            };
            (
                Box::new(RcpStarSender::new(dst, cfg)) as Box<dyn HostApp>,
                Box::new(EchoReceiver::default()) as Box<dyn HostApp>,
            )
        })
        .collect();
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: N_FLOWS,
            ..Default::default()
        },
        apps,
    );
    for sw in [bell.left, bell.right] {
        init_rate_registers(sim.switch_mut(sw));
    }
    sim.run(RunLimit::Until(time::secs(RUN_S)));
    let mut done = Vec::new();
    let mut unfinished = 0;
    for (i, s) in bell.senders.iter().enumerate() {
        let sender = sim.host_app::<RcpStarSender>(*s);
        match sender.completed_at {
            Some(t) => done.push((flows[i].1, (t - flows[i].0) as f64 / 1e6)),
            None => unfinished += 1,
        }
    }
    FctStats { done, unfinished }
}

fn run_aimd() -> FctStats {
    let flows = arrivals();
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = flows
        .iter()
        .enumerate()
        .map(|(i, (start, bytes))| {
            let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
            let cfg = AimdConfig {
                stop_after_bytes: Some(*bytes),
                ..Default::default()
            };
            (
                Box::new(AimdSender::new(dst, cfg, *start)) as Box<dyn HostApp>,
                Box::new(AimdAcker::default()) as Box<dyn HostApp>,
            )
        })
        .collect();
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: N_FLOWS,
            queue_limit_bytes: 60_000,
            ..Default::default()
        },
        apps,
    );
    sim.run(RunLimit::Until(time::secs(RUN_S)));
    let mut done = Vec::new();
    let mut unfinished = 0;
    for (i, s) in bell.senders.iter().enumerate() {
        let sender = sim.host_app::<AimdSender>(*s);
        match sender.completed_at {
            Some(t) => done.push((flows[i].1, (t - flows[i].0) as f64 / 1e6)),
            None => unfinished += 1,
        }
    }
    FctStats { done, unfinished }
}

fn main() {
    println!(
        "flow completion times: {N_MICE} mice x {} KB + {N_ELEPHANTS} elephants x {} KB",
        MOUSE_BYTES / 1000,
        ELEPHANT_BYTES / 1000
    );
    println!("staggered arrivals (mean gap 0.3 s) on the 10 Mb/s dumbbell; identical workload\n");

    let systems = vec![
        ("AIMD (loss-driven)", run_aimd()),
        ("RCP* (TPP rates)", run_rcpstar()),
    ];
    let mut rows = Vec::new();
    for (name, s) in &systems {
        for (class, bytes) in [("mice", MOUSE_BYTES), ("elephants", ELEPHANT_BYTES)] {
            let v = s.class(bytes);
            rows.push(vec![
                name.to_string(),
                class.to_string(),
                format!("{:.0}", FctStats::mean(&v)),
                format!("{:.0}", FctStats::pct(&v, 0.5)),
                format!("{:.0}", FctStats::pct(&v, 0.95)),
                v.len().to_string(),
                s.unfinished.to_string(),
            ]);
        }
    }
    print_table(
        &[
            "system",
            "class",
            "mean FCT ms",
            "p50 ms",
            "p95 ms",
            "finished",
            "unfinished",
        ],
        &rows,
    );
    println!(
        "\n(lone-flow lower bounds: mouse {:.0} ms, elephant {:.0} ms)",
        MOUSE_BYTES as f64 * 8.0 / 10e6 * 1e3,
        ELEPHANT_BYTES as f64 * 8.0 / 10e6 * 1e3
    );
    println!("RCP*'s first collect echo hands each new mouse the fair rate and");
    println!("its queues stay near-empty, so mice skip both the capacity search");
    println!("and the elephant-built queueing delay that dominate AIMD mice.");
}
