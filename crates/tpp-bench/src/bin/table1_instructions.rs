//! Table 1 reproduction: the instruction set, with live semantic checks —
//! each row's "meaning" is demonstrated by executing the instruction on a
//! real ASIC model and showing the effect.

use tpp_asic::{Asic, AsicConfig, Outcome};
use tpp_bench::print_table;
use tpp_isa::assemble;
use tpp_wire::ethernet::{build_frame, EtherType, Frame};
use tpp_wire::tpp::{AddressingMode, TppBuilder, TppPacket};
use tpp_wire::EthernetAddress;

/// Execute `src` with `init` packet memory on a fresh switch; returns
/// (memory words after, sram word 0 after, completed).
fn run(src: &str, init: &[u32]) -> (Vec<u32>, u32, bool) {
    let dst = EthernetAddress::from_host_id(1);
    let mut asic = Asic::new(AsicConfig::with_ports(0xb0b, 2));
    asic.l2_mut().insert(dst, 1);
    asic.global_sram_mut().set_word(0, 7).unwrap(); // a pre-existing switch value
    let program = assemble(src).unwrap();
    let payload = TppBuilder::new(AddressingMode::Stack)
        .instructions(&program.encode_words().unwrap())
        .memory_init(init)
        .build();
    let frame = build_frame(
        dst,
        EthernetAddress::from_host_id(0),
        EtherType::TPP,
        &payload,
    );
    let outcome = asic.handle_frame(frame, 0, 0);
    let Outcome::Enqueued {
        port,
        exec: Some(report),
        ..
    } = outcome
    else {
        panic!("TPP not executed");
    };
    let sent = asic.dequeue(port).unwrap();
    let parsed = Frame::new_checked(&sent[..]).unwrap();
    let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
    (
        tpp.memory_words(),
        asic.global_sram().word(0).unwrap(),
        report.completed(),
    )
}

fn main() {
    println!("Table 1: the TPP instruction set (live semantics on switch 0xb0b,");
    println!("         with Switch:Scratch[0] preloaded to 7)\n");

    let mut rows = Vec::new();

    // LOAD / PUSH: copy values from switch to packet.
    let (mem, _, _) = run("PUSH [Switch:SwitchID]", &[0, 0]);
    rows.push(vec![
        "LOAD, PUSH".into(),
        "Copy values from switch to packet".into(),
        format!("PUSH [Switch:SwitchID] -> mem {mem:x?}"),
    ]);

    // STORE / POP: copy values from packet to switch.
    let (_, sram, _) = run("STORE [Switch:Scratch[0]], [Packet:0]", &[42, 0]);
    rows.push(vec![
        "STORE, POP".into(),
        "Copy values from packet to switch".into(),
        format!("STORE 42 -> Scratch[0] == {sram}"),
    ]);

    // CSTORE: conditional store for atomic operations.
    let (mem_ok, sram_ok, _) = run("CSTORE [Switch:Scratch[0]], [Packet:0]", &[7, 99, 0]);
    let (mem_no, sram_no, _) = run("CSTORE [Switch:Scratch[0]], [Packet:0]", &[5, 99, 0]);
    rows.push(vec![
        "CSTORE".into(),
        "Conditional store for atomic operations".into(),
        format!(
            "cond==old(7): stored {sram_ok}, old={} | cond!=old: kept {sram_no}, old={}",
            mem_ok[2], mem_no[2]
        ),
    ]);

    // CEXEC: conditionally execute the subsequent instructions.
    let (_, sram_hit, c1) = run(
        "CEXEC [Switch:SwitchID], [Packet:0]\nSTORE [Switch:Scratch[0]], [Packet:2]",
        &[0xffff_ffff, 0xb0b, 1234],
    );
    let (_, sram_miss, c2) = run(
        "CEXEC [Switch:SwitchID], [Packet:0]\nSTORE [Switch:Scratch[0]], [Packet:2]",
        &[0xffff_ffff, 0xeee, 1234],
    );
    rows.push(vec![
        "CEXEC".into(),
        "Conditionally execute the subsequent instructions".into(),
        format!(
            "id match: ran={c1}, Scratch[0]={sram_hit} | id mismatch: ran-to-end={c2}, Scratch[0]={sram_miss}"
        ),
    ]);

    print_table(
        &["Instruction", "Meaning (Table 1)", "live demonstration"],
        &rows,
    );

    println!("\nextension ops (§1's \"simple arithmetic\", 1 cycle each):");
    let (mem, _, _) = run("PUSHI 6\nPUSHI 3\nADD", &[0, 0, 0]);
    println!("  PUSHI 6; PUSHI 3; ADD  -> {:?}", &mem[..1]);
    let (mem, _, _) = run("PUSHI 6\nPUSHI 3\nSUB", &[0, 0, 0]);
    println!("  PUSHI 6; PUSHI 3; SUB  -> {:?}", &mem[..1]);
    let (mem, _, _) = run("PUSHI 12\nPUSHI 10\nAND", &[0, 0, 0]);
    println!("  PUSHI 12; PUSHI 10; AND -> {:?}", &mem[..1]);
    let (mem, _, _) = run("PUSHI 12\nPUSHI 3\nOR", &[0, 0, 0]);
    println!("  PUSHI 12; PUSHI 3; OR  -> {:?}", &mem[..1]);
}
