//! Simulator throughput: how much simulated RCP\* traffic the
//! discrete-event engine processes per wall-clock second. This bounds
//! every experiment's scale and is the reproduction's analogue of "can
//! the testbed keep up".

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpp_apps::rcpstar::{init_rate_registers, RcpStarConfig, RcpStarSender};
use tpp_host::EchoReceiver;
use tpp_netsim::RunLimit;
use tpp_netsim::{dumbbell, time, DumbbellParams, HostApp};
use tpp_wire::EthernetAddress;

fn run_rcp_slice(sim_duration_ms: u64) -> u64 {
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = (0..3)
        .map(|i| {
            let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
            (
                Box::new(RcpStarSender::new(dst, RcpStarConfig::default())) as Box<dyn HostApp>,
                Box::new(EchoReceiver::default()) as Box<dyn HostApp>,
            )
        })
        .collect();
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: 3,
            ..Default::default()
        },
        apps,
    );
    for sw in [bell.left, bell.right] {
        init_rate_registers(sim.switch_mut(sw));
    }
    sim.run(RunLimit::Until(time::millis(sim_duration_ms)));
    sim.switch(bell.left).regs().packets_processed
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim");
    group.sample_size(10);
    group.bench_function("rcpstar_3flows_500ms_sim", |b| {
        b.iter(|| black_box(run_rcp_slice(500)))
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
