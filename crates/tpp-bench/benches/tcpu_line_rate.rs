//! E5 — TCPU execution cost as a function of program length.
//!
//! The paper's argument is a cycle-count argument (1 instruction/cycle,
//! 4-cycle latency, 300-cycle cut-through budget); the cycle model is
//! asserted in unit tests. This bench measures what the *software model*
//! costs per executed TPP, which bounds how large a simulated network the
//! reproduction can drive — and demonstrates that execution cost grows
//! linearly in instruction count, exactly as the hardware argument needs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tpp_asic::{Asic, AsicConfig};
use tpp_isa::assemble;
use tpp_wire::ethernet::{build_frame, EtherType};
use tpp_wire::tpp::{AddressingMode, TppBuilder};
use tpp_wire::EthernetAddress;

fn tpp_frame(n_insns: usize) -> Vec<u8> {
    let program = assemble(&"PUSH [Queue:QueueSize]\n".repeat(n_insns)).unwrap();
    let payload = TppBuilder::new(AddressingMode::Stack)
        .instructions(&program.encode_words().unwrap())
        .memory_words(n_insns)
        .build();
    build_frame(
        EthernetAddress::from_host_id(1),
        EthernetAddress::from_host_id(0),
        EtherType::TPP,
        &payload,
    )
}

fn bench_execute(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcpu_execute");
    for n in [1usize, 5, 16, 64] {
        let frame = tpp_frame(n);
        let mut asic = Asic::new(AsicConfig::with_ports(1, 2));
        asic.l2_mut().insert(EthernetAddress::from_host_id(1), 1);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("instructions", n), &frame, |b, frame| {
            b.iter(|| {
                let outcome = asic.handle_frame(black_box(frame.clone()), 0, 0);
                asic.dequeue(1);
                black_box(outcome)
            })
        });
    }
    group.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    let program = assemble(
        "PUSH [Switch:SwitchID]\nPUSH [Link:QueueSize]\nPUSH [Link:RX-Bytes]\n\
         PUSH [Link:CapacityKbps]\nPUSH [Link:Scratch[0]]",
    )
    .unwrap();
    c.bench_function("isa_encode_5", |b| {
        b.iter(|| black_box(&program).encode_words().unwrap())
    });
    let words = program.encode_words().unwrap();
    c.bench_function("isa_decode_5", |b| {
        b.iter(|| tpp_isa::Program::decode_words(black_box(&words)).unwrap())
    });
    let src = "PUSH [Queue:QueueSize]\nCEXEC [Switch:SwitchID], [Packet:0]\nSTORE [Link:Scratch[0]], [Packet:2]";
    c.bench_function("assemble_3_lines", |b| {
        b.iter(|| assemble(black_box(src)).unwrap())
    });
}

criterion_group!(benches, bench_execute, bench_encode_decode);
criterion_main!(benches);
