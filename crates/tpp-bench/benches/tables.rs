//! Forwarding-table lookup costs as tables grow — the other half of the
//! line-rate story: the TCPU shares the pipeline with L2/L3/TCAM
//! lookups, so their software-model costs calibrate how much simulated
//! network the reproduction can drive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tpp_asic::{FlowAction, FlowEntry, FlowKey, FlowMatch, L2Table, LpmTable, Tcam};
use tpp_wire::EthernetAddress;

fn key(i: u32) -> FlowKey {
    FlowKey {
        in_port: (i % 4) as u16,
        dst_mac: EthernetAddress::from_host_id(i),
        src_mac: EthernetAddress::from_host_id(i + 1),
        ethertype: 0x0802,
        ipv4_dst: Some(0x0a00_0000 | i),
    }
}

fn bench_l2(c: &mut Criterion) {
    let mut group = c.benchmark_group("l2_lookup");
    for n in [16u32, 1024, 65536] {
        let mut table = L2Table::new();
        for i in 0..n {
            table.insert(EthernetAddress::from_host_id(i), (i % 64) as u16);
        }
        group.bench_with_input(BenchmarkId::new("entries", n), &n, |b, n| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % n;
                black_box(table.lookup(EthernetAddress::from_host_id(i)))
            })
        });
    }
    group.finish();
}

fn bench_lpm(c: &mut Criterion) {
    let mut group = c.benchmark_group("lpm_lookup");
    for n in [16u32, 1024, 65536] {
        let mut table = LpmTable::new();
        for i in 0..n {
            table.insert(0x0a00_0000 | (i << 8), 24, (i % 64) as u16);
        }
        group.bench_with_input(BenchmarkId::new("prefixes", n), &n, |b, n| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % n;
                black_box(table.lookup(0x0a00_0000 | (i << 8) | 5))
            })
        });
    }
    group.finish();
}

fn bench_tcam(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcam_lookup");
    for n in [16u32, 256, 4096] {
        let mut tcam = Tcam::new();
        for i in 0..n {
            tcam.install(FlowEntry {
                id: i,
                version: 1,
                priority: (i % 100) as u16,
                pattern: FlowMatch {
                    dst_mac: Some(EthernetAddress::from_host_id(i)),
                    ..Default::default()
                },
                action: FlowAction::Forward((i % 64) as u16),
            });
        }
        group.bench_with_input(BenchmarkId::new("entries_hit", n), &n, |b, n| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % n;
                black_box(tcam.lookup(&key(i)))
            })
        });
        group.bench_with_input(BenchmarkId::new("entries_miss", n), &n, |b, _| {
            b.iter(|| black_box(tcam.lookup(&key(u32::MAX - 7))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_l2, bench_lpm, bench_tcam);
criterion_main!(benches);
