//! Full-pipeline frame processing cost: parser → tables → (TCPU) →
//! queue, for plain frames vs TPP frames, and the marginal cost of the
//! TCPU stage (the §3 "simplicity in the network" claim, in software:
//! executing a small TPP must be comparable to a table lookup, not a
//! detour through a slow path).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tpp_asic::{Asic, AsicConfig, FlowAction, FlowEntry, FlowMatch};
use tpp_isa::assemble;
use tpp_wire::ethernet::{build_frame, EtherType};
use tpp_wire::tpp::{AddressingMode, TppBuilder};
use tpp_wire::EthernetAddress;

fn asic() -> Asic {
    let mut asic = Asic::new(AsicConfig::with_ports(1, 4));
    asic.l2_mut().insert(EthernetAddress::from_host_id(1), 1);
    // Populate tables realistically: 64 TCAM entries, 1k L2 MACs, 256
    // L3 prefixes.
    for i in 0..64 {
        asic.install_flow(FlowEntry {
            id: 1000 + i,
            version: 1,
            priority: i as u16,
            pattern: FlowMatch {
                ethertype: Some(0x9999), // never matches the bench traffic
                in_port: Some((i % 4) as u16),
                ..Default::default()
            },
            action: FlowAction::Forward(2),
        });
    }
    for i in 0..1024 {
        asic.l2_mut()
            .insert(EthernetAddress::from_host_id(100 + i), (i % 4) as u16);
    }
    for i in 0..256u32 {
        asic.l3_mut()
            .insert(0x0a00_0000 | (i << 8), 24, (i % 4) as u16);
    }
    asic
}

fn bench_pipeline(c: &mut Criterion) {
    let plain = build_frame(
        EthernetAddress::from_host_id(1),
        EthernetAddress::from_host_id(0),
        EtherType(0x0802),
        &[0u8; 1000],
    );
    let program = assemble(
        "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]\nPUSH [Link:RX-Bytes]\n\
         PUSH [Link:CapacityKbps]\nPUSH [Link:Scratch[0]]",
    )
    .unwrap();
    let payload = TppBuilder::new(AddressingMode::Stack)
        .instructions(&program.encode_words().unwrap())
        .memory_words(5)
        .payload(&[0u8; 900])
        .build();
    let tpp = build_frame(
        EthernetAddress::from_host_id(1),
        EthernetAddress::from_host_id(0),
        EtherType::TPP,
        &payload,
    );

    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(1));
    let mut a = asic();
    group.bench_function("plain_1000B", |b| {
        b.iter(|| {
            let o = a.handle_frame(black_box(plain.clone()), 0, 0);
            a.dequeue(1);
            black_box(o)
        })
    });
    let mut a = asic();
    group.bench_function("tpp_5_instructions", |b| {
        b.iter(|| {
            let o = a.handle_frame(black_box(tpp.clone()), 0, 0);
            a.dequeue(1);
            black_box(o)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
