//! Property-based tests for the wire formats: round-trips and the
//! "arbitrary bytes never panic" robustness guarantee.

use proptest::prelude::*;
use tpp_wire::ethernet::{build_frame, EtherType, EthernetAddress, Frame};
use tpp_wire::tpp::{AddressingMode, TppBuilder, TppPacket, MAX_INSTRUCTIONS};

proptest! {
    /// Any frame we build parses back with identical fields.
    #[test]
    fn ethernet_roundtrip(dst in any::<[u8; 6]>(), src in any::<[u8; 6]>(),
                          ethertype in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let buf = build_frame(
            EthernetAddress(dst),
            EthernetAddress(src),
            EtherType(ethertype),
            &payload,
        );
        let frame = Frame::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(frame.dst_addr(), EthernetAddress(dst));
        prop_assert_eq!(frame.src_addr(), EthernetAddress(src));
        prop_assert_eq!(frame.ethertype(), EtherType(ethertype));
        prop_assert_eq!(frame.payload(), &payload[..]);
    }

    /// Any TPP we build parses back with identical sections.
    #[test]
    fn tpp_roundtrip(insns in proptest::collection::vec(any::<u32>(), 0..MAX_INSTRUCTIONS),
                     mem in proptest::collection::vec(any::<u32>(), 0..64),
                     per_hop in 0usize..8,
                     hop_mode in any::<bool>(),
                     payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mode = if hop_mode { AddressingMode::Hop } else { AddressingMode::Stack };
        let bytes = TppBuilder::new(mode)
            .instructions(&insns)
            .memory_init(&mem)
            .per_hop_words(per_hop)
            .payload(&payload)
            .build();
        let tpp = TppPacket::new_checked(&bytes[..]).unwrap();
        prop_assert_eq!(tpp.instruction_words(), insns);
        prop_assert_eq!(tpp.memory_words(), mem);
        prop_assert_eq!(tpp.addressing_mode(), mode);
        prop_assert_eq!(tpp.per_hop_len(), per_hop * 4);
        prop_assert_eq!(tpp.inner_payload(), &payload[..]);
    }

    /// Arbitrary garbage bytes either parse (and then all accessors are
    /// in-bounds) or fail cleanly — never panic. This is the §6 failure
    /// injection requirement: a corrupted TPP must not take down the
    /// pipeline.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(tpp) = TppPacket::new_checked(&bytes[..]) {
            // Exercising every accessor must stay in bounds.
            let _ = tpp.version();
            let _ = tpp.flags();
            let _ = tpp.instruction_words();
            let _ = tpp.memory_words();
            let _ = tpp.stack_words();
            let _ = tpp.inner_payload();
            let _ = tpp.hop_base();
        }
    }

    /// A valid TPP truncated at any point either fails to parse or
    /// parses into a view whose accessors stay in bounds. Truncation is
    /// what a switch that mangles a frame mid-transfer produces; the
    /// builder's own asserts (instruction-count and 16-bit length
    /// limits) live purely on the construction path and must be
    /// unreachable from here.
    #[test]
    fn truncated_tpp_never_panics(insns in proptest::collection::vec(any::<u32>(), 0..16),
                                  mem in proptest::collection::vec(any::<u32>(), 0..32),
                                  payload in proptest::collection::vec(any::<u8>(), 0..32),
                                  cut in any::<u16>()) {
        let bytes = TppBuilder::new(AddressingMode::Stack)
            .instructions(&insns)
            .memory_init(&mem)
            .payload(&payload)
            .build();
        let cut = cut as usize % (bytes.len() + 1);
        if let Ok(tpp) = TppPacket::new_checked(&bytes[..cut]) {
            let _ = tpp.flags();
            let _ = tpp.instruction_words();
            let _ = tpp.memory_words();
            let _ = tpp.stack_words();
            let _ = tpp.inner_payload();
            let _ = tpp.hop_base();
        }
    }

    /// A valid TPP with one bit flipped in flight (exactly what a
    /// corruption fault injects) either fails validation or parses into
    /// a view on which even the *mutable* ops — the ones a TCPU performs
    /// — return errors instead of panicking.
    #[test]
    fn bit_flipped_tpp_never_panics(insns in proptest::collection::vec(any::<u32>(), 1..16),
                                    mem in proptest::collection::vec(any::<u32>(), 0..32),
                                    flip in any::<u16>(),
                                    bit in 0u8..8,
                                    hop in any::<u8>(),
                                    offset in 0usize..256,
                                    sp in 0usize..256) {
        let mut bytes = TppBuilder::new(AddressingMode::Hop)
            .instructions(&insns)
            .memory_init(&mem)
            .per_hop_words(2)
            .build();
        let i = flip as usize % bytes.len();
        bytes[i] ^= 1 << bit;
        if let Ok(mut tpp) = TppPacket::new_checked(&mut bytes[..]) {
            let _ = tpp.instruction_words();
            let _ = tpp.memory_words();
            let _ = tpp.hop_base();
            tpp.set_hop(hop);
            tpp.advance_hop();
            let _ = tpp.hop_base();
            let _ = tpp.write_word(offset, 0xdead_beef);
            tpp.set_sp(sp);
            let _ = tpp.push_word(1);
            let _ = tpp.pop_word();
            let _ = tpp.stack_words();
            let _ = tpp.inner_payload();
        }
    }

    /// Pushing words never writes outside packet memory, and the stack
    /// content equals the sequence of successful pushes.
    #[test]
    fn push_respects_preallocated_memory(words in proptest::collection::vec(any::<u32>(), 0..32),
                                         capacity in 0usize..16) {
        let mut bytes = TppBuilder::new(AddressingMode::Stack)
            .instructions(&[0])
            .memory_words(capacity)
            .build();
        let before_len = bytes.len();
        let mut tpp = TppPacket::new_checked(&mut bytes[..]).unwrap();
        let mut expected = Vec::new();
        for w in &words {
            if tpp.push_word(*w).is_ok() {
                expected.push(*w);
            }
        }
        prop_assert_eq!(expected.len(), words.len().min(capacity));
        prop_assert_eq!(tpp.stack_words(), expected);
        // "The TPP never grows/shrinks inside the network" (Fig. 1).
        prop_assert_eq!(bytes.len(), before_len);
    }
}
