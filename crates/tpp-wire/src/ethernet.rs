//! Ethernet II frame representation.
//!
//! TPPs "are forwarded just like other packets" (§2), so every TPP rides in
//! an ordinary Ethernet frame. The simulator's switches parse this header in
//! their header-parser pipeline stage (Fig. 3) to decide forwarding, and look
//! at the [`EtherType`] to decide whether the TCPU should run.

use crate::{get_u16, put_u16, Result, WireError};

/// Length of an Ethernet II header: two 6-byte MAC addresses + 2-byte
/// EtherType. (No 802.1Q tags — the paper's prototype does not use them.)
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A 48-bit Ethernet MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EthernetAddress(pub [u8; 6]);

impl EthernetAddress {
    /// The broadcast address, `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: EthernetAddress = EthernetAddress([0xff; 6]);

    /// Construct a deterministic host address from a small integer id.
    ///
    /// Hosts and switches in the simulator are numbered; this maps id `n`
    /// to the locally-administered unicast address `02:00:00:00:hi:lo`.
    pub fn from_host_id(id: u32) -> Self {
        let b = id.to_be_bytes();
        EthernetAddress([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// The host id this address was minted from by [`Self::from_host_id`],
    /// or `None` for addresses outside the simulator's `02:00:…` host
    /// block (broadcast, switch-originated, or foreign MACs).
    pub fn host_id(&self) -> Option<u32> {
        let b = self.0;
        (b[0] == 0x02 && b[1] == 0x00).then(|| u32::from_be_bytes([b[2], b[3], b[4], b[5]]))
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the group (multicast) bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for a unicast (non-multicast, non-broadcast) address.
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast()
    }
}

impl core::fmt::Display for EthernetAddress {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// A 16-bit EtherType.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EtherType(pub u16);

impl EtherType {
    /// IPv4 (used by non-TPP background traffic in examples).
    pub const IPV4: EtherType = EtherType(0x0800);
    /// The TPP EtherType — the "uniquely identifiable header" of §2.
    pub const TPP: EtherType = EtherType(crate::tpp::ETHERTYPE_TPP);
}

/// Zero-copy view of an Ethernet II frame over any byte buffer.
///
/// ```
/// use tpp_wire::ethernet::{Frame, EthernetAddress, EtherType};
///
/// let mut buf = vec![0u8; 64];
/// let mut frame = Frame::new_unchecked(&mut buf[..]);
/// frame.set_dst_addr(EthernetAddress::from_host_id(1));
/// frame.set_src_addr(EthernetAddress::from_host_id(2));
/// frame.set_ethertype(EtherType::TPP);
/// assert_eq!(frame.dst_addr(), EthernetAddress::from_host_id(1));
/// assert_eq!(frame.payload().len(), 50);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Frame<T> {
    /// Wrap a buffer without validating its length.
    ///
    /// Accessors will panic if the buffer is shorter than
    /// [`ETHERNET_HEADER_LEN`]; prefer [`Frame::new_checked`] for untrusted
    /// input.
    pub fn new_unchecked(buffer: T) -> Frame<T> {
        Frame { buffer }
    }

    /// Wrap a buffer, validating that a full Ethernet header is present.
    pub fn new_checked(buffer: T) -> Result<Frame<T>> {
        let got = buffer.as_ref().len();
        if got < ETHERNET_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: ETHERNET_HEADER_LEN,
                got,
            });
        }
        Ok(Frame { buffer })
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC address.
    pub fn dst_addr(&self) -> EthernetAddress {
        let b = self.buffer.as_ref();
        EthernetAddress([b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// Source MAC address.
    pub fn src_addr(&self) -> EthernetAddress {
        let b = self.buffer.as_ref();
        EthernetAddress([b[6], b[7], b[8], b[9], b[10], b[11]])
    }

    /// The frame's EtherType.
    pub fn ethertype(&self) -> EtherType {
        EtherType(get_u16(self.buffer.as_ref(), 12))
    }

    /// True if this frame carries a TPP (by EtherType).
    pub fn is_tpp(&self) -> bool {
        self.ethertype() == EtherType::TPP
    }

    /// The frame payload (everything after the 14-byte header).
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[ETHERNET_HEADER_LEN..]
    }

    /// Total frame length in bytes, including the Ethernet header.
    pub fn total_len(&self) -> usize {
        self.buffer.as_ref().len()
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Frame<T> {
    /// Set the destination MAC address.
    pub fn set_dst_addr(&mut self, addr: EthernetAddress) {
        self.buffer.as_mut()[0..6].copy_from_slice(&addr.0);
    }

    /// Set the source MAC address.
    pub fn set_src_addr(&mut self, addr: EthernetAddress) {
        self.buffer.as_mut()[6..12].copy_from_slice(&addr.0);
    }

    /// Set the EtherType.
    pub fn set_ethertype(&mut self, ethertype: EtherType) {
        put_u16(self.buffer.as_mut(), 12, ethertype.0);
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[ETHERNET_HEADER_LEN..]
    }
}

/// Build an owned Ethernet frame around a payload.
pub fn build_frame(
    dst: EthernetAddress,
    src: EthernetAddress,
    ethertype: EtherType,
    payload: &[u8],
) -> Vec<u8> {
    let mut buf = vec![0u8; ETHERNET_HEADER_LEN + payload.len()];
    {
        let mut frame = Frame::new_unchecked(&mut buf[..]);
        frame.set_dst_addr(dst);
        frame.set_src_addr(src);
        frame.set_ethertype(ethertype);
        frame.payload_mut().copy_from_slice(payload);
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_display_and_flags() {
        let a = EthernetAddress([0x02, 0x00, 0, 0, 0, 7]);
        assert_eq!(a.to_string(), "02:00:00:00:00:07");
        assert!(a.is_unicast());
        assert!(!a.is_broadcast());
        assert!(EthernetAddress::BROADCAST.is_broadcast());
        assert!(EthernetAddress::BROADCAST.is_multicast());
    }

    #[test]
    fn from_host_id_is_injective_for_small_ids() {
        let a = EthernetAddress::from_host_id(1);
        let b = EthernetAddress::from_host_id(2);
        assert_ne!(a, b);
        assert!(a.is_unicast());
    }

    #[test]
    fn checked_rejects_short_buffer() {
        let buf = [0u8; 13];
        match Frame::new_checked(&buf[..]) {
            Err(WireError::Truncated {
                needed: 14,
                got: 13,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn roundtrip_fields() {
        let mut buf = [0u8; 20];
        let mut f = Frame::new_checked(&mut buf[..]).unwrap();
        f.set_dst_addr(EthernetAddress::BROADCAST);
        f.set_src_addr(EthernetAddress::from_host_id(42));
        f.set_ethertype(EtherType::TPP);
        f.payload_mut().copy_from_slice(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(f.dst_addr(), EthernetAddress::BROADCAST);
        assert_eq!(f.src_addr(), EthernetAddress::from_host_id(42));
        assert!(f.is_tpp());
        assert_eq!(f.payload(), &[1, 2, 3, 4, 5, 6]);
        assert_eq!(f.total_len(), 20);
    }

    #[test]
    fn build_frame_roundtrip() {
        let buf = build_frame(
            EthernetAddress::from_host_id(1),
            EthernetAddress::from_host_id(2),
            EtherType::IPV4,
            b"hello",
        );
        let f = Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(f.ethertype(), EtherType::IPV4);
        assert!(!f.is_tpp());
        assert_eq!(f.payload(), b"hello");
    }
}
