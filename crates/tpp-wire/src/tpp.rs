//! The TPP section: header, instruction words, and packet memory (Fig. 4).
//!
//! A [`TppPacket`] views the Ethernet *payload* of a TPP frame:
//!
//! ```text
//!  0               1               2               3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +---------------+---------------+-------------------------------+
//! |   version     |     flags     |      tpp_len (bytes)          |
//! +---------------+---------------+-------------------------------+
//! |      insn_len (bytes)         |       mem_len (bytes)         |
//! +---------------+---------------+-------------------------------+
//! |   addr_mode   |      hop      |       sp (byte offset)        |
//! +---------------+---------------+-------------------------------+
//! |     per_hop_len (bytes)       |        inner_ethertype        |
//! +-------------------------------+-------------------------------+
//! |                 instructions (insn_len bytes)                 |
//! +---------------------------------------------------------------+
//! |                packet memory (mem_len bytes)                  |
//! +---------------------------------------------------------------+
//! |              encapsulated payload (optional)                  |
//! +---------------------------------------------------------------+
//! ```
//!
//! This realizes the five header fields of Figure 4 — (1) length of TPP,
//! (2) length of packet memory, (3) packet-memory addressing mode,
//! (4) hop number / stack pointer, (5) per-hop memory length — in 16 bytes
//! (the paper budgets "up to 20 bytes"). All lengths are 4-byte aligned.
//!
//! The *stack pointer* and *hop number* are both carried (fields 9–11):
//! stack-mode programs use `sp`, hop-mode programs use `hop`; keeping both
//! live lets a single program mix `PUSH` with hop-addressed `LOAD`s.

use crate::{get_u16, get_u32, put_u16, put_u32, Result, WireError};

/// EtherType identifying a TPP frame. The paper does not pin a constant;
/// we use `0x6666` (unassigned by IEEE) throughout the reproduction.
pub const ETHERTYPE_TPP: u16 = 0x6666;

/// Fixed TPP header length in bytes (Fig. 4 budgets "up to 20 bytes").
pub const TPP_HEADER_LEN: usize = 16;

/// Size in bytes of one packet-memory word. Matches Figure 1, where the
/// stack pointer advances 0x0 → 0x4 → 0x8 → 0xc as one value is pushed per
/// hop. Wider (8-byte) values are simply stored as two words.
pub const WORD_SIZE: usize = 4;

/// Maximum instructions per TPP the reproduction accepts.
///
/// §3.3 restricts a TPP "to a handful of instructions" so the TCPU fits in
/// the line-rate cycle budget; the paper's examples budget 5 instructions
/// (20 bytes). We cap parsing at a generous 64 so experiments can explore
/// the overhead/benefit trade-off, while the ASIC separately enforces its
/// own cycle budget.
pub const MAX_INSTRUCTIONS: usize = 64;

/// How packet memory is addressed by instructions (§3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressingMode {
    /// Stack addressing: `PUSH`/`POP` move the header's stack pointer.
    Stack,
    /// Hop addressing: `base:offset` refers to the word at
    /// `hop * per_hop_len + offset`, like x86 `base:offset`.
    Hop,
}

impl AddressingMode {
    /// Wire encoding of the mode.
    pub fn to_wire(self) -> u8 {
        match self {
            AddressingMode::Stack => 0,
            AddressingMode::Hop => 1,
        }
    }

    /// Decode the wire value.
    pub fn from_wire(value: u8) -> Result<Self> {
        match value {
            0 => Ok(AddressingMode::Stack),
            1 => Ok(AddressingMode::Hop),
            _ => Err(WireError::Malformed(
                "unknown packet-memory addressing mode",
            )),
        }
    }
}

/// Flag bit: set by the first switch that executes the TPP.
pub const FLAG_EXECUTED: u8 = 0x01;
/// Flag bit: set by the receiving end-host before echoing the TPP back to
/// the sender (§2.2 Phase 1: "the receiver simply echos a fully executed
/// TPP back to the sender"). TCPUs treat echoed TPPs as inert.
pub const FLAG_ECHOED: u8 = 0x02;
/// Flag bit: ECN congestion-experienced mark, set by a switch whose
/// egress queue exceeded its marking threshold when this packet was
/// enqueued. This is the *fixed-function* congestion signal §4 contrasts
/// TPPs against ("one example is Explicit Congestion Notification (ECN)
/// in which a router stamps a bit in the IP header whenever the egress
/// queue occupancy exceeds a configurable threshold"); the reproduction
/// implements it so the two designs can be compared head to head.
pub const FLAG_ECN: u8 = 0x04;

/// Zero-copy view of the TPP section (header + instructions + memory +
/// encapsulated payload) over any byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TppPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TppPacket<T> {
    /// Wrap a buffer without validation. Accessors may panic on short
    /// buffers; use [`TppPacket::new_checked`] for anything from the wire.
    pub fn new_unchecked(buffer: T) -> TppPacket<T> {
        TppPacket { buffer }
    }

    /// Wrap and fully validate a buffer.
    ///
    /// Checks, in order: header presence, version, length-field arithmetic
    /// (`tpp_len == header + insn_len + mem_len`), 4-byte alignment of all
    /// lengths, instruction count cap, addressing-mode validity, and that
    /// `sp`, and in hop mode `hop * per_hop_len`, do not point outside
    /// packet memory. A packet that passes cannot cause an out-of-bounds
    /// access during execution.
    pub fn new_checked(buffer: T) -> Result<TppPacket<T>> {
        let len = buffer.as_ref().len();
        if len < TPP_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: TPP_HEADER_LEN,
                got: len,
            });
        }
        let packet = TppPacket { buffer };
        packet.check()?;
        Ok(packet)
    }

    fn check(&self) -> Result<()> {
        let buf = self.buffer.as_ref();
        if self.version() != 1 {
            return Err(WireError::Malformed("unsupported TPP version"));
        }
        let tpp_len = self.tpp_len();
        let insn_len = self.insn_len();
        let mem_len = self.mem_len();
        if !insn_len.is_multiple_of(WORD_SIZE) || !mem_len.is_multiple_of(WORD_SIZE) {
            return Err(WireError::Malformed("section length not 4-byte aligned"));
        }
        if insn_len / WORD_SIZE > MAX_INSTRUCTIONS {
            return Err(WireError::Malformed("too many instructions"));
        }
        if tpp_len != TPP_HEADER_LEN + insn_len + mem_len {
            return Err(WireError::Malformed("tpp_len does not match sections"));
        }
        if tpp_len > buf.len() {
            return Err(WireError::Truncated {
                needed: tpp_len,
                got: buf.len(),
            });
        }
        AddressingMode::from_wire(buf[8])?;
        let sp = self.sp();
        if !sp.is_multiple_of(WORD_SIZE) {
            return Err(WireError::Malformed("stack pointer not word aligned"));
        }
        if sp > mem_len {
            return Err(WireError::Malformed("stack pointer past packet memory"));
        }
        if !self.per_hop_len().is_multiple_of(WORD_SIZE) {
            return Err(WireError::Malformed("per-hop length not word aligned"));
        }
        Ok(())
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// TPP format version (always 1).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[0]
    }

    /// Flag byte (see [`FLAG_EXECUTED`], [`FLAG_ECHOED`]).
    pub fn flags(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// Total TPP section length in bytes (Fig. 4 field 1).
    pub fn tpp_len(&self) -> usize {
        get_u16(self.buffer.as_ref(), 2) as usize
    }

    /// Instruction section length in bytes.
    pub fn insn_len(&self) -> usize {
        get_u16(self.buffer.as_ref(), 4) as usize
    }

    /// Packet-memory length in bytes (Fig. 4 field 2).
    pub fn mem_len(&self) -> usize {
        get_u16(self.buffer.as_ref(), 6) as usize
    }

    /// Packet-memory addressing mode (Fig. 4 field 3).
    pub fn addressing_mode(&self) -> AddressingMode {
        AddressingMode::from_wire(self.buffer.as_ref()[8]).expect("validated at construction")
    }

    /// Hop counter: how many TCPUs have executed this TPP (Fig. 4 field 4).
    pub fn hop(&self) -> u8 {
        self.buffer.as_ref()[9]
    }

    /// Stack pointer: byte offset into packet memory where the next `PUSH`
    /// lands (Fig. 4 field 4, and the `SP` of Fig. 1).
    pub fn sp(&self) -> usize {
        get_u16(self.buffer.as_ref(), 10) as usize
    }

    /// Per-hop memory length in bytes, used only in hop addressing
    /// (Fig. 4 field 5).
    pub fn per_hop_len(&self) -> usize {
        get_u16(self.buffer.as_ref(), 12) as usize
    }

    /// EtherType of the encapsulated payload (0 when there is none).
    ///
    /// This lets an edge switch *strip* the TPP (§4) and forward the inner
    /// payload as an ordinary frame of the right type.
    pub fn inner_ethertype(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 14)
    }

    /// Number of instructions carried.
    pub fn instruction_count(&self) -> usize {
        self.insn_len() / WORD_SIZE
    }

    /// The raw instruction words, in execution order.
    pub fn instruction_words(&self) -> Vec<u32> {
        let buf = self.buffer.as_ref();
        (0..self.instruction_count())
            .map(|i| get_u32(buf, TPP_HEADER_LEN + i * WORD_SIZE))
            .collect()
    }

    /// The encoded instruction section as raw bytes (big-endian words, in
    /// execution order). Zero-copy: decode caches hash and compare this
    /// slice directly instead of materializing a `Vec<u32>` per packet.
    pub fn instruction_bytes(&self) -> &[u8] {
        let count = self.instruction_count();
        &self.buffer.as_ref()[TPP_HEADER_LEN..TPP_HEADER_LEN + count * WORD_SIZE]
    }

    /// The `i`-th instruction word. `i` must be below
    /// [`instruction_count`](Self::instruction_count).
    pub fn instruction_word(&self, i: usize) -> u32 {
        get_u32(self.buffer.as_ref(), TPP_HEADER_LEN + i * WORD_SIZE)
    }

    /// Byte offset of packet memory within this buffer.
    fn mem_base(&self) -> usize {
        TPP_HEADER_LEN + self.insn_len()
    }

    /// The packet-memory bytes.
    pub fn memory(&self) -> &[u8] {
        let base = self.mem_base();
        &self.buffer.as_ref()[base..base + self.mem_len()]
    }

    /// Read the 4-byte word at byte `offset` in packet memory.
    pub fn read_word(&self, offset: usize) -> Result<u32> {
        let mem_len = self.mem_len();
        if !offset.is_multiple_of(WORD_SIZE) || offset + WORD_SIZE > mem_len {
            return Err(WireError::OutOfBounds {
                offset,
                len: mem_len,
            });
        }
        Ok(get_u32(self.buffer.as_ref(), self.mem_base() + offset))
    }

    /// All packet-memory words, in order. Handy for end-host decoding of
    /// fully-executed telemetry TPPs.
    pub fn memory_words(&self) -> Vec<u32> {
        (0..self.mem_len() / WORD_SIZE)
            .map(|i| self.read_word(i * WORD_SIZE).expect("in bounds"))
            .collect()
    }

    /// The words pushed so far in stack mode (`memory[0..sp]`).
    ///
    /// `sp` is clamped to packet memory: `set_sp` defers bounds
    /// enforcement to execution time, so a corrupted or maliciously set
    /// stack pointer must degrade to a short read, not a panic.
    pub fn stack_words(&self) -> Vec<u32> {
        let limit = self.sp().min(self.mem_len());
        (0..limit / WORD_SIZE)
            .map(|i| self.read_word(i * WORD_SIZE).expect("in bounds"))
            .collect()
    }

    /// The encapsulated payload following the TPP section (§2: a TPP
    /// "encapsulates an optional ethernet payload").
    pub fn inner_payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.tpp_len()..]
    }

    /// Base byte offset of the current hop's slice of packet memory in hop
    /// addressing mode: `hop * per_hop_len`.
    pub fn hop_base(&self) -> usize {
        self.hop() as usize * self.per_hop_len()
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TppPacket<T> {
    /// Set the flag byte.
    pub fn set_flags(&mut self, flags: u8) {
        self.buffer.as_mut()[1] = flags;
    }

    /// Set the hop counter.
    pub fn set_hop(&mut self, hop: u8) {
        self.buffer.as_mut()[9] = hop;
    }

    /// Increment the hop counter (saturating). Each executing TCPU calls
    /// this after running the program so hop-addressed state from different
    /// switches lands in different per-hop slots.
    pub fn advance_hop(&mut self) {
        let h = self.hop();
        self.set_hop(h.saturating_add(1));
    }

    /// Set the stack pointer (byte offset, must remain word-aligned and
    /// within packet memory — enforced at execution, not here).
    pub fn set_sp(&mut self, sp: usize) {
        put_u16(self.buffer.as_mut(), 10, sp as u16);
    }

    /// Write the 4-byte word at byte `offset` in packet memory.
    pub fn write_word(&mut self, offset: usize, value: u32) -> Result<()> {
        let mem_len = self.mem_len();
        if !offset.is_multiple_of(WORD_SIZE) || offset + WORD_SIZE > mem_len {
            return Err(WireError::OutOfBounds {
                offset,
                len: mem_len,
            });
        }
        let base = self.mem_base();
        put_u32(self.buffer.as_mut(), base + offset, value);
        Ok(())
    }

    /// Push a word at the stack pointer and advance it (`PUSH` semantics).
    ///
    /// Fails with `OutOfBounds` when packet memory is exhausted — the
    /// paper's rule that "the TPP never grows/shrinks inside the network"
    /// (Fig. 1) means a full stack is a program error, not a reallocation.
    pub fn push_word(&mut self, value: u32) -> Result<()> {
        let sp = self.sp();
        self.write_word(sp, value)?;
        self.set_sp(sp + WORD_SIZE);
        Ok(())
    }

    /// Pop the word below the stack pointer (`POP` semantics).
    pub fn pop_word(&mut self) -> Result<u32> {
        let sp = self.sp();
        if sp < WORD_SIZE {
            return Err(WireError::OutOfBounds { offset: 0, len: 0 });
        }
        let value = self.read_word(sp - WORD_SIZE)?;
        self.set_sp(sp - WORD_SIZE);
        Ok(value)
    }
}

/// Builder for owned TPP packets. This is what end-hosts use to
/// "preallocate enough packet memory" (§2.1) before injection.
///
/// ```
/// use tpp_wire::tpp::{TppBuilder, AddressingMode, TppPacket};
///
/// // A Fig. 1 style telemetry TPP: one instruction, room for 3 hops.
/// let bytes = TppBuilder::new(AddressingMode::Stack)
///     .instructions(&[0xdead_beef])
///     .memory_words(3)
///     .build();
/// let tpp = TppPacket::new_checked(&bytes[..]).unwrap();
/// assert_eq!(tpp.instruction_count(), 1);
/// assert_eq!(tpp.mem_len(), 12);
/// assert_eq!(tpp.sp(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct TppBuilder {
    mode: AddressingMode,
    instructions: Vec<u32>,
    memory: Vec<u32>,
    per_hop_len: usize,
    payload: Vec<u8>,
    inner_ethertype: u16,
}

impl TppBuilder {
    /// Start building a TPP with the given packet-memory addressing mode.
    pub fn new(mode: AddressingMode) -> Self {
        TppBuilder {
            mode,
            instructions: Vec::new(),
            memory: Vec::new(),
            per_hop_len: 0,
            payload: Vec::new(),
            inner_ethertype: 0,
        }
    }

    /// Set the instruction words (already encoded by `tpp-isa`).
    pub fn instructions(mut self, words: &[u32]) -> Self {
        self.instructions = words.to_vec();
        self
    }

    /// Preallocate `words` zeroed packet-memory words.
    pub fn memory_words(mut self, words: usize) -> Self {
        self.memory = vec![0; words];
        self
    }

    /// Initialize packet memory with explicit words ("packet memory can
    /// contain initialized values to load data into the ASIC", Fig. 4).
    pub fn memory_init(mut self, words: &[u32]) -> Self {
        self.memory = words.to_vec();
        self
    }

    /// Set the per-hop memory length in *words* (hop addressing mode).
    pub fn per_hop_words(mut self, words: usize) -> Self {
        self.per_hop_len = words * WORD_SIZE;
        self
    }

    /// Attach an encapsulated payload (e.g. the application datagram a
    /// piggy-backed TPP rides on).
    pub fn payload(mut self, payload: &[u8]) -> Self {
        self.payload = payload.to_vec();
        self
    }

    /// Declare the EtherType of the encapsulated payload, so an edge
    /// switch stripping the TPP can restore an ordinary frame (§4).
    pub fn inner_ethertype(mut self, ethertype: u16) -> Self {
        self.inner_ethertype = ethertype;
        self
    }

    /// Serialize to bytes (the Ethernet payload of a TPP frame).
    ///
    /// # Panics
    /// Panics if the program exceeds [`MAX_INSTRUCTIONS`] or any section
    /// exceeds the 16-bit length fields; both are programmer errors at
    /// packet construction time, not wire-input errors.
    pub fn build(&self) -> Vec<u8> {
        assert!(
            self.instructions.len() <= MAX_INSTRUCTIONS,
            "TPP limited to {MAX_INSTRUCTIONS} instructions"
        );
        let insn_len = self.instructions.len() * WORD_SIZE;
        let mem_len = self.memory.len() * WORD_SIZE;
        let tpp_len = TPP_HEADER_LEN + insn_len + mem_len;
        assert!(tpp_len <= u16::MAX as usize, "TPP section too large");
        let mut buf = vec![0u8; tpp_len + self.payload.len()];
        buf[0] = 1; // version
        buf[1] = 0; // flags
        put_u16(&mut buf, 2, tpp_len as u16);
        put_u16(&mut buf, 4, insn_len as u16);
        put_u16(&mut buf, 6, mem_len as u16);
        buf[8] = self.mode.to_wire();
        buf[9] = 0; // hop
        put_u16(&mut buf, 10, 0); // sp
        put_u16(&mut buf, 12, self.per_hop_len as u16);
        put_u16(&mut buf, 14, self.inner_ethertype);
        for (i, word) in self.instructions.iter().enumerate() {
            put_u32(&mut buf, TPP_HEADER_LEN + i * WORD_SIZE, *word);
        }
        let mem_base = TPP_HEADER_LEN + insn_len;
        for (i, word) in self.memory.iter().enumerate() {
            put_u32(&mut buf, mem_base + i * WORD_SIZE, *word);
        }
        buf[tpp_len..].copy_from_slice(&self.payload);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        TppBuilder::new(AddressingMode::Stack)
            .instructions(&[0x1111_1111, 0x2222_2222])
            .memory_words(4)
            .payload(b"app")
            .build()
    }

    #[test]
    fn builder_layout() {
        let bytes = sample();
        let tpp = TppPacket::new_checked(&bytes[..]).unwrap();
        assert_eq!(tpp.version(), 1);
        assert_eq!(tpp.tpp_len(), 16 + 8 + 16);
        assert_eq!(tpp.insn_len(), 8);
        assert_eq!(tpp.mem_len(), 16);
        assert_eq!(tpp.instruction_count(), 2);
        assert_eq!(tpp.instruction_words(), vec![0x1111_1111, 0x2222_2222]);
        assert_eq!(tpp.addressing_mode(), AddressingMode::Stack);
        assert_eq!(tpp.hop(), 0);
        assert_eq!(tpp.sp(), 0);
        assert_eq!(tpp.inner_payload(), b"app");
    }

    #[test]
    fn figure1_sp_walk() {
        // Reproduce the SP evolution of Figure 1: pushing one queue-size
        // word per hop advances SP 0x0 -> 0x4 -> 0x8 -> 0xc.
        let mut bytes = TppBuilder::new(AddressingMode::Stack)
            .instructions(&[0])
            .memory_words(3)
            .build();
        let mut tpp = TppPacket::new_checked(&mut bytes[..]).unwrap();
        assert_eq!(tpp.sp(), 0x0);
        tpp.push_word(0x00).unwrap();
        assert_eq!(tpp.sp(), 0x4);
        tpp.push_word(0xa0).unwrap();
        assert_eq!(tpp.sp(), 0x8);
        tpp.push_word(0x0e).unwrap();
        assert_eq!(tpp.sp(), 0xc);
        assert_eq!(tpp.stack_words(), vec![0x00, 0xa0, 0x0e]);
        // Packet memory is preallocated: a fourth push must fail.
        assert!(tpp.push_word(0xff).is_err());
    }

    #[test]
    fn pop_returns_pushed_value() {
        let mut bytes = TppBuilder::new(AddressingMode::Stack)
            .instructions(&[0])
            .memory_words(2)
            .build();
        let mut tpp = TppPacket::new_checked(&mut bytes[..]).unwrap();
        tpp.push_word(77).unwrap();
        assert_eq!(tpp.pop_word().unwrap(), 77);
        assert_eq!(tpp.sp(), 0);
        assert!(tpp.pop_word().is_err(), "pop on empty stack fails");
    }

    #[test]
    fn hop_addressing_base() {
        let mut bytes = TppBuilder::new(AddressingMode::Hop)
            .instructions(&[0])
            .memory_words(8)
            .per_hop_words(2)
            .build();
        let mut tpp = TppPacket::new_checked(&mut bytes[..]).unwrap();
        assert_eq!(tpp.hop_base(), 0);
        tpp.advance_hop();
        assert_eq!(tpp.hop(), 1);
        assert_eq!(tpp.hop_base(), 8);
        tpp.advance_hop();
        assert_eq!(tpp.hop_base(), 16);
    }

    #[test]
    fn rejects_truncated() {
        let bytes = sample();
        // Header-only truncation.
        assert!(matches!(
            TppPacket::new_checked(&bytes[..10]),
            Err(WireError::Truncated { .. })
        ));
        // Body truncation: header claims more than present.
        assert!(matches!(
            TppPacket::new_checked(&bytes[..20]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_bad_version_mode_alignment() {
        let mut bytes = sample();
        bytes[0] = 9;
        assert!(matches!(
            TppPacket::new_checked(&bytes[..]),
            Err(WireError::Malformed("unsupported TPP version"))
        ));
        let mut bytes = sample();
        bytes[8] = 7;
        assert!(TppPacket::new_checked(&bytes[..]).is_err());
        let mut bytes = sample();
        bytes[5] = 3; // insn_len = 3: unaligned and inconsistent
        assert!(TppPacket::new_checked(&bytes[..]).is_err());
    }

    #[test]
    fn rejects_inconsistent_tpp_len() {
        let mut bytes = sample();
        bytes[3] = bytes[3].wrapping_add(4);
        assert!(matches!(
            TppPacket::new_checked(&bytes[..]),
            Err(WireError::Malformed("tpp_len does not match sections"))
        ));
    }

    #[test]
    fn word_access_bounds() {
        let mut bytes = sample();
        let mut tpp = TppPacket::new_checked(&mut bytes[..]).unwrap();
        tpp.write_word(0, 0xdead_beef).unwrap();
        assert_eq!(tpp.read_word(0).unwrap(), 0xdead_beef);
        assert!(tpp.read_word(2).is_err(), "unaligned offset");
        assert!(tpp.read_word(16).is_err(), "past end");
        assert!(tpp.write_word(13, 0).is_err());
    }

    #[test]
    fn paper_overhead_identity() {
        // §3.3: "If we limit to 5 instructions per packet, the instruction
        // space overhead is 20 bytes/packet".
        let bytes = TppBuilder::new(AddressingMode::Stack)
            .instructions(&[0; 5])
            .memory_words(0)
            .build();
        let tpp = TppPacket::new_checked(&bytes[..]).unwrap();
        assert_eq!(tpp.insn_len(), 20);
        // "...if each instruction accesses 8-byte values in the packet, we
        // require only 40 bytes of packet memory per hop" — 5 instructions
        // x 2 words x 4 bytes.
        let per_hop_bytes = 5 * 2 * WORD_SIZE;
        assert_eq!(per_hop_bytes, 40);
    }
}
