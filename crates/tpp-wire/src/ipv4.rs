//! IPv4 header view, for the background/data traffic the L3 LPM path of
//! the Fig. 3 pipeline routes (TPPs themselves ride plain Ethernet; "TPPs
//! are forwarded just like other packets", so the pipeline must forward
//! ordinary IP traffic too).
//!
//! Same zero-copy idiom as the other formats; the checksum is real
//! (RFC 1071 one's-complement) so fuzzed/corrupted headers are rejected
//! the way a switch would reject them.

use crate::{get_u16, put_u16, Result, WireError};

/// Minimum IPv4 header length (no options), bytes.
pub const IPV4_MIN_HEADER_LEN: usize = 20;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Address(pub u32);

impl Ipv4Address {
    /// Build from dotted-quad octets.
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Address(u32::from_be_bytes([a, b, c, d]))
    }
}

impl core::fmt::Display for Ipv4Address {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

/// Zero-copy view of an IPv4 packet (header + payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wrap without validation (accessors may panic on short buffers).
    pub fn new_unchecked(buffer: T) -> Ipv4Packet<T> {
        Ipv4Packet { buffer }
    }

    /// Wrap and validate: version, IHL, total length, and header
    /// checksum must all be consistent.
    pub fn new_checked(buffer: T) -> Result<Ipv4Packet<T>> {
        let len = buffer.as_ref().len();
        if len < IPV4_MIN_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: IPV4_MIN_HEADER_LEN,
                got: len,
            });
        }
        let packet = Ipv4Packet { buffer };
        if packet.version() != 4 {
            return Err(WireError::Malformed("IPv4 version field is not 4"));
        }
        let header_len = packet.header_len();
        if !(IPV4_MIN_HEADER_LEN..=60).contains(&header_len) || header_len > len {
            return Err(WireError::Malformed("IPv4 IHL out of range"));
        }
        if packet.total_len() < header_len || packet.total_len() > len {
            return Err(WireError::Malformed("IPv4 total length inconsistent"));
        }
        // A valid header's one's-complement sum (including the checksum
        // field) folds to 0xffff.
        if packet.compute_checksum() != 0xffff {
            return Err(WireError::Malformed("IPv4 header checksum mismatch"));
        }
        Ok(packet)
    }

    /// IP version (must be 4).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[0] >> 4
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        ((self.buffer.as_ref()[0] & 0x0f) as usize) * 4
    }

    /// Total packet length (header + payload), from the header field.
    pub fn total_len(&self) -> usize {
        get_u16(self.buffer.as_ref(), 2) as usize
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Transport protocol number (17 = UDP, 6 = TCP, …).
    pub fn protocol(&self) -> u8 {
        self.buffer.as_ref()[9]
    }

    /// Header checksum field.
    pub fn checksum(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 10)
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Address {
        Ipv4Address(crate::get_u32(self.buffer.as_ref(), 12))
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Address {
        Ipv4Address(crate::get_u32(self.buffer.as_ref(), 16))
    }

    /// The transport payload.
    pub fn payload(&self) -> &[u8] {
        let buf = self.buffer.as_ref();
        &buf[self.header_len()..self.total_len().min(buf.len())]
    }

    /// RFC 1071 one's-complement sum over the header (including the
    /// checksum field; a valid header sums to 0xffff).
    fn compute_checksum(&self) -> u16 {
        let header = &self.buffer.as_ref()[..self.header_len()];
        checksum(header)
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Decrement the TTL and fix up the checksum incrementally, as a
    /// router's forwarding path would. Returns the new TTL (0 = the
    /// packet should be dropped).
    pub fn decrement_ttl(&mut self) -> u8 {
        let buf = self.buffer.as_mut();
        let ttl = buf[8].saturating_sub(1);
        buf[8] = ttl;
        // Recompute rather than incremental update: clarity over the
        // nanoseconds, and the model isn't counting them here.
        put_u16(buf, 10, 0);
        let header_len = ((buf[0] & 0x0f) as usize) * 4;
        let sum = checksum(&buf[..header_len]);
        // (!sum) is the value that makes the header sum to zero.
        put_u16(buf, 10, !sum);
        ttl
    }
}

/// RFC 1071 checksum over a byte slice.
fn checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u16::from_be_bytes([chunk[0], chunk[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// Build a minimal (option-less) IPv4 packet around a payload.
pub fn build_ipv4(
    src: Ipv4Address,
    dst: Ipv4Address,
    protocol: u8,
    ttl: u8,
    payload: &[u8],
) -> Vec<u8> {
    let total = IPV4_MIN_HEADER_LEN + payload.len();
    assert!(total <= u16::MAX as usize, "IPv4 packet too large");
    let mut buf = vec![0u8; total];
    buf[0] = 0x45; // version 4, IHL 5
    put_u16(&mut buf, 2, total as u16);
    buf[8] = ttl;
    buf[9] = protocol;
    crate::put_u32(&mut buf, 12, src.0);
    crate::put_u32(&mut buf, 16, dst.0);
    let sum = checksum(&buf[..IPV4_MIN_HEADER_LEN]);
    put_u16(&mut buf, 10, !sum);
    buf[IPV4_MIN_HEADER_LEN..].copy_from_slice(payload);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        build_ipv4(
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 1, 2, 3),
            17,
            64,
            b"payload",
        )
    }

    #[test]
    fn roundtrip_fields() {
        let buf = sample();
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.version(), 4);
        assert_eq!(p.header_len(), 20);
        assert_eq!(p.total_len(), 27);
        assert_eq!(p.ttl(), 64);
        assert_eq!(p.protocol(), 17);
        assert_eq!(p.src_addr(), Ipv4Address::new(10, 0, 0, 1));
        assert_eq!(p.dst_addr(), Ipv4Address::new(10, 1, 2, 3));
        assert_eq!(p.payload(), b"payload");
        assert_eq!(p.dst_addr().to_string(), "10.1.2.3");
    }

    #[test]
    fn checksum_validates_and_rejects_corruption() {
        let mut buf = sample();
        assert!(Ipv4Packet::new_checked(&buf[..]).is_ok());
        buf[16] ^= 0x01; // corrupt the destination
        assert!(matches!(
            Ipv4Packet::new_checked(&buf[..]),
            Err(WireError::Malformed("IPv4 header checksum mismatch"))
        ));
    }

    #[test]
    fn rejects_bad_version_and_lengths() {
        let mut buf = sample();
        buf[0] = 0x65; // version 6
                       // (checksum is now also wrong, but version is checked first)
        assert!(matches!(
            Ipv4Packet::new_checked(&buf[..]),
            Err(WireError::Malformed("IPv4 version field is not 4"))
        ));
        let buf = [0u8; 10];
        assert!(matches!(
            Ipv4Packet::new_checked(&buf[..]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn ttl_decrement_keeps_checksum_valid() {
        let mut buf = sample();
        {
            let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
            assert_eq!(p.decrement_ttl(), 63);
        }
        let p = Ipv4Packet::new_checked(&buf[..]).expect("checksum still valid");
        assert_eq!(p.ttl(), 63);
        // Down to zero.
        let mut buf = build_ipv4(
            Ipv4Address::new(1, 1, 1, 1),
            Ipv4Address::new(2, 2, 2, 2),
            6,
            1,
            &[],
        );
        let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
        assert_eq!(p.decrement_ttl(), 0);
        assert_eq!(p.decrement_ttl(), 0, "saturates");
    }

    #[test]
    fn odd_length_checksum() {
        // Checksum helper handles odd-length input (used only via even
        // headers here, but the helper is general).
        assert_eq!(checksum(&[]), 0);
        assert_eq!(checksum(&[0xff]), 0xff00);
    }
}
