//! # tpp-wire — byte-level packet formats for Tiny Packet Programs
//!
//! This crate defines the on-the-wire representation of a TPP packet as
//! described in §3.2 and Figure 4 of *Tiny Packet Programs for low-latency
//! network control and monitoring* (HotNets 2013):
//!
//! ```text
//! +------------------+---------------------+----------------------+-----------+
//! | Ethernet header  | TPP header + insns  | Packet memory        | Payload   |
//! | (14 bytes)       | (16 B hdr, 4 B/insn)| (initialized by host)| (optional)|
//! +------------------+---------------------+----------------------+-----------+
//! ```
//!
//! A TPP is "any ethernet packet with a uniquely identifiable header that
//! contains instructions, some additional space (packet memory), and
//! encapsulates an optional ethernet payload". We identify TPPs by the
//! dedicated [`ETHERTYPE_TPP`] EtherType.
//!
//! The API follows the zero-copy typed-view idiom: [`ethernet::Frame`] and
//! [`tpp::TppPacket`] wrap any `AsRef<[u8]>` buffer, validate it once with
//! `new_checked`, and then expose cheap field accessors. Mutation is only
//! available when the underlying buffer is `AsMut<[u8]>`. Nothing in this
//! crate allocates except the explicit [`tpp::TppBuilder`].
//!
//! Design constraints taken from the paper:
//! * all memory lengths are 4-byte aligned "for efficient encoding" (Fig. 4);
//! * the header carries: total TPP length, packet-memory length, the
//!   packet-memory addressing mode (stack or hop), the hop number / stack
//!   pointer, and the per-hop memory length (Fig. 4, fields 1–5);
//! * instructions are fixed-size 4-byte words (§3.3 "we were able to encode
//!   an instruction and its operands in a 4-byte integer");
//! * packet memory is preallocated by the end-host and never grows or
//!   shrinks inside the network (Fig. 1 caption).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ethernet;
pub mod ipv4;
pub mod tpp;

pub use ethernet::{EtherType, EthernetAddress, Frame, ETHERNET_HEADER_LEN};
pub use ipv4::{build_ipv4, Ipv4Address, Ipv4Packet, IPV4_MIN_HEADER_LEN};
pub use tpp::{AddressingMode, TppBuilder, TppPacket, ETHERTYPE_TPP, TPP_HEADER_LEN};

/// Errors produced when parsing or manipulating wire formats.
///
/// Parsing never panics: a buffer that is too short, misaligned, or
/// internally inconsistent yields a descriptive [`WireError`], so a corrupted
/// TPP can never take down a switch pipeline (§6 of DESIGN.md, failure
/// injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header of the format being read.
    Truncated {
        /// How many bytes the format needed.
        needed: usize,
        /// How many bytes were available.
        got: usize,
    },
    /// A length field points past the end of the buffer or violates
    /// the format's internal invariants (e.g. not 4-byte aligned).
    Malformed(&'static str),
    /// The caller asked for an offset outside packet memory.
    OutOfBounds {
        /// The byte offset that was requested.
        offset: usize,
        /// The size of the region the offset had to fall in.
        len: usize,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "buffer truncated: needed {needed} bytes, got {got}")
            }
            WireError::Malformed(reason) => write!(f, "malformed packet: {reason}"),
            WireError::OutOfBounds { offset, len } => {
                write!(f, "offset {offset} out of bounds for region of {len} bytes")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias used across the wire crate.
pub type Result<T> = core::result::Result<T, WireError>;

/// Read a big-endian `u16` at `offset`; the caller guarantees bounds.
pub(crate) fn get_u16(buf: &[u8], offset: usize) -> u16 {
    u16::from_be_bytes([buf[offset], buf[offset + 1]])
}

/// Write a big-endian `u16` at `offset`; the caller guarantees bounds.
pub(crate) fn put_u16(buf: &mut [u8], offset: usize, value: u16) {
    buf[offset..offset + 2].copy_from_slice(&value.to_be_bytes());
}

/// Read a big-endian `u32` at `offset`; the caller guarantees bounds.
pub(crate) fn get_u32(buf: &[u8], offset: usize) -> u32 {
    u32::from_be_bytes([
        buf[offset],
        buf[offset + 1],
        buf[offset + 2],
        buf[offset + 3],
    ])
}

/// Write a big-endian `u32` at `offset`; the caller guarantees bounds.
pub(crate) fn put_u32(buf: &mut [u8], offset: usize, value: u32) {
    buf[offset..offset + 4].copy_from_slice(&value.to_be_bytes());
}
