//! The TPP toolchain in one binary: assemble a program (from the command
//! line or a built-in demo), lint it against a deployment plan, show its
//! encoding, execute it on a staged switch, and dump the resulting packet
//! state — the workflow an operator iterating on a new network task
//! would live in.
//!
//! Run with the built-in demo program:
//! ```console
//! $ cargo run --release --example asm_playground
//! ```
//! or assemble your own (one instruction per argument):
//! ```console
//! $ cargo run --release --example asm_playground \
//!     "PUSH [Switch:SwitchID]" "PUSH [Queue:QueueSize]"
//! ```

use tpp::isa::{disassemble, lint};
use tpp::prelude::*;

const DEMO: &str = "PUSH [Switch:SwitchID]\n\
                    PUSH [Queue:QueueSize]\n\
                    PUSH [Link:RX-Bytes]\n\
                    CEXEC [Switch:SwitchID], [Packet:12]\n\
                    STORE [Switch:Scratch[0]], [Packet:14]";

const HOPS: usize = 3;
const MEM_WORDS: usize = 16;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let source = if args.is_empty() {
        DEMO.to_string()
    } else {
        args.join("\n")
    };

    // --- Assemble ---
    println!("=== source ===\n{source}\n");
    let program = match assemble(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("assembly error: {e}");
            std::process::exit(1);
        }
    };

    // --- Lint against the deployment plan ---
    println!("=== lint (plan: {HOPS} hops, {MEM_WORDS} memory words) ===");
    let lints = lint(&program, HOPS, MEM_WORDS);
    if lints.is_empty() {
        println!("clean\n");
    } else {
        for l in &lints {
            println!("warning: {l}");
        }
        println!();
    }

    // --- Encoding ---
    println!(
        "=== encoding ({} bytes of instructions) ===",
        program.wire_len()
    );
    let words = program.encode_words().expect("encodable");
    for (insn, word) in disassemble(&program).lines().zip(&words) {
        println!("  {word:#010x}  {insn}");
    }
    println!();

    // --- Execute on a staged switch ---
    let dst = EthernetAddress::from_host_id(1);
    let mut asic = Asic::new(AsicConfig::with_ports(0xb0b, 2));
    asic.l2_mut().insert(dst, 1);
    // Stage some state so reads return something interesting.
    let filler = build_frame(
        dst,
        EthernetAddress::from_host_id(7),
        EtherType(0x0802),
        &[0u8; 150],
    );
    asic.handle_frame(filler, 0, 0);
    // CEXEC demo operands: mask at word 12, value at word 13; STORE
    // source at word 14.
    let mut memory = vec![0u32; MEM_WORDS];
    memory[12] = 0xffff_ffff;
    memory[13] = 0xb0b;
    memory[14] = 4242;
    let payload = TppBuilder::new(AddressingMode::Stack)
        .instructions(&words)
        .memory_init(&memory)
        .build();
    let frame = build_frame(
        dst,
        EthernetAddress::from_host_id(0),
        EtherType::TPP,
        &payload,
    );

    println!("=== execution on switch 0xb0b (egress queue staged to 164 B) ===");
    let outcome = asic.handle_frame(frame, 0, 1_000);
    let Outcome::Enqueued { port, exec, .. } = outcome else {
        println!("packet dropped: {outcome:?}");
        return;
    };
    if let Some(report) = exec {
        println!(
            "executed {} instruction(s) in {} cycles{}",
            report.instructions_executed,
            report.cycles,
            match report.halt {
                None => " (completed)".to_string(),
                Some(h) => format!(" (halted: {h:?})"),
            }
        );
    }
    asic.dequeue(port); // the filler
    let sent = asic.dequeue(port).expect("program packet forwarded");
    let parsed = Frame::new_checked(&sent[..]).unwrap();
    let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
    println!("\n=== packet state after 1 hop ===");
    println!("hop = {}, SP = {:#x}", tpp.hop(), tpp.sp());
    for (i, w) in tpp.memory_words().iter().enumerate() {
        let marker = if i * 4 < tpp.sp() { " <- pushed" } else { "" };
        if *w != 0 || i * 4 < tpp.sp() {
            println!("  mem[{i:2}] = {w:#010x} ({w}){marker}");
        }
    }
    println!(
        "\nswitch scratch after execution: Scratch[0] = {}",
        asic.global_sram().word(0).unwrap()
    );
}
