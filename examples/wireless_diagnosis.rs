//! §2.3 "Other possibilities" — diagnosing a wireless link with TPPs.
//!
//! A station hangs off an access point whose downlink is a radio:
//!
//! ```text
//! sender ── AP(switch 1) ──~ ~ radio ~ ~── station
//!               ▲
//!        cross-traffic host
//! ```
//!
//! Packets get lost in two ways that look identical to the endpoints:
//! the channel fades (SNR drops, frames die in the air) or the AP's
//! queue overflows (congestion). The AP annotates probe packets with
//! `Link:SnrDeciBel` *and* `Queue:QueueSize` — "low-latency access to
//! such rapidly changing state is useful for network diagnosis and fault
//! localization" — and the sender attributes every loss.
//!
//! Three phases: healthy (0–2 s), fading channel (2–4 s), congestion
//! with a clean channel (4–6 s). The example reports attribution
//! accuracy against ground truth.
//!
//! Run with: `cargo run --release --example wireless_diagnosis`

use std::collections::BTreeMap;

use tpp::apps::wireless::{classify_loss, DiagnosisConfig, LinkHealthMonitor, LossCause};
use tpp::prelude::*;

const RUN_NS: u64 = time::secs(6);
const PHASE_NS: u64 = time::secs(2);

/// Paces sequenced data to the station and runs the health monitor.
struct Sender {
    station: EthernetAddress,
    monitor: LinkHealthMonitor,
    sent: BTreeMap<u32, u64>, // seq -> send time
    next_seq: u32,
}

impl HostApp for Sender {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.monitor.on_start(ctx);
        ctx.set_timer(1, 100);
    }
    fn on_timer(&mut self, token: u64, ctx: &mut HostCtx<'_>) {
        if token != 100 {
            self.monitor.on_timer(token, ctx);
            return;
        }
        if ctx.now() >= RUN_NS {
            return;
        }
        // Same frame size as the cross traffic so both compete equally
        // for drop-tail space; the 1.7 ms period is deliberately not a
        // multiple of the cross traffic's 1 ms so arrivals sweep through
        // every queue phase instead of deterministically aliasing.
        let mut payload = vec![0u8; 1200];
        payload[0..4].copy_from_slice(&self.next_seq.to_be_bytes());
        self.sent.insert(self.next_seq, ctx.now());
        self.next_seq += 1;
        ctx.send(build_frame(
            self.station,
            ctx.mac(),
            DATA_ETHERTYPE,
            &payload,
        ));
        ctx.set_timer(time::micros(1_700), 100); // ~5.7 Mb/s of data
    }
    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        self.monitor.on_frame(frame, ctx);
    }
}

/// The station: records data sequence numbers, echoes TPP probes.
#[derive(Default)]
struct Station {
    received: Vec<u32>,
}

impl HostApp for Station {
    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        if let Some(reply) = tpp::host::echo_reply(&frame, ctx.mac()) {
            ctx.send(reply);
            return;
        }
        if let Ok(parsed) = Frame::new_checked(&frame[..]) {
            if parsed.ethertype() == DATA_ETHERTYPE && parsed.payload().len() >= 4 {
                let seq = u32::from_be_bytes(parsed.payload()[0..4].try_into().unwrap());
                self.received.push(seq);
            }
        }
    }
}

/// Cross-traffic source: floods during phase 3 only.
struct CrossTraffic {
    station: EthernetAddress,
}

impl HostApp for CrossTraffic {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_timer(2 * PHASE_NS, 0);
    }
    fn on_timer(&mut self, _t: u64, ctx: &mut HostCtx<'_>) {
        if ctx.now() >= RUN_NS {
            return;
        }
        // 3x the downlink capacity: guaranteed overflow.
        for _ in 0..3 {
            ctx.send(build_frame(
                self.station,
                ctx.mac(),
                DATA_ETHERTYPE,
                &[0u8; 1200],
            ));
        }
        ctx.set_timer(time::millis(1), 0);
    }
}

/// Deterministic "radio": SNR over time, deci-dB.
fn snr_at(t_ns: u64) -> u32 {
    if !(PHASE_NS..2 * PHASE_NS).contains(&t_ns) {
        return 300; // 30 dB, healthy
    }
    // Phase 2: slow fade, 30 dB down to 5 dB and back, 500 ms period.
    let phase = (t_ns - PHASE_NS) as f64 / 5e8 * std::f64::consts::TAU;
    let snr_db = 17.5 + 12.5 * phase.cos();
    (snr_db * 10.0) as u32
}

/// Channel loss as a function of SNR: below 15 dB the link gets lossy.
fn loss_for_snr(snr_decidb: u32) -> u16 {
    if snr_decidb < 150 {
        ((150 - snr_decidb) * 4).min(600) as u16
    } else {
        0
    }
}

fn main() {
    let station_mac = EthernetAddress::from_host_id(1);
    let mut net = NetworkBuilder::new();
    // AP: port 0 = sender, port 1 = wireless downlink (20 Mb/s), port 2
    // = cross-traffic host.
    let mut ap_cfg = AsicConfig::with_ports(1, 3)
        .capacity_kbps(100_000)
        .queue_limit_bytes(30_000);
    ap_cfg.ports[1].capacity_kbps = 20_000;
    let ap = net.add_switch(ap_cfg);
    let sender = net.add_host(
        Box::new(Sender {
            station: station_mac,
            monitor: LinkHealthMonitor::new(station_mac, 2, time::millis(1), RUN_NS),
            sent: BTreeMap::new(),
            next_seq: 0,
        }),
        100_000,
    );
    let station = net.add_host(Box::new(Station::default()), 100_000);
    let cross = net.add_host(
        Box::new(CrossTraffic {
            station: station_mac,
        }),
        100_000,
    );
    net.connect(
        Endpoint::host(sender),
        Endpoint::switch(ap, 0),
        time::micros(5),
    );
    net.connect(
        Endpoint::host(station),
        Endpoint::switch(ap, 1),
        time::micros(5),
    );
    net.connect(
        Endpoint::host(cross),
        Endpoint::switch(ap, 2),
        time::micros(5),
    );
    let mut sim = net.build();
    sim.populate_l2();

    // The harness plays the radio: every 10 ms update the AP's SNR
    // register and the downlink's loss probability to match.
    let mut t = 0;
    while t < RUN_NS {
        t += time::millis(10);
        let snr = snr_at(t);
        sim.switch_mut(ap).set_port_snr(1, snr);
        sim.set_link_loss(Endpoint::switch(ap, 1), loss_for_snr(snr));
        sim.run(RunLimit::Until(t));
    }
    sim.run(RunLimit::Until(RUN_NS + time::millis(100))); // drain

    // --- Diagnosis ---
    let station_app_received: Vec<u32> = sim.host_app::<Station>(station).received.clone();
    let sender_app = sim.host_app::<Sender>(sender);
    let received: std::collections::HashSet<u32> = station_app_received.iter().copied().collect();
    let samples = sender_app.monitor.series_for(1);
    let config = DiagnosisConfig {
        fade_snr_decidb: 150,
        congestion_queue_bytes: 25_000,
        max_sample_distance_ns: time::millis(5),
    };

    let mut per_phase: BTreeMap<(&str, LossCause), u32> = BTreeMap::new();
    let mut losses = 0;
    for (seq, sent_t) in &sender_app.sent {
        if received.contains(seq) {
            continue;
        }
        losses += 1;
        let cause = classify_loss(&samples, *sent_t, &config);
        let phase = match *sent_t {
            t if t < PHASE_NS => "healthy (0-2s)",
            t if t < 2 * PHASE_NS => "fading (2-4s)",
            _ => "congested (4-6s)",
        };
        *per_phase.entry((phase, cause)).or_insert(0) += 1;
    }

    println!(
        "data packets: {} sent, {} received, {} lost",
        sender_app.sent.len(),
        received.len(),
        losses
    );
    println!(
        "health probes: {} sent, {} echoed ({} samples of AP state)\n",
        sender_app.monitor.probes_sent,
        sender_app.monitor.echoes_received,
        samples.len()
    );
    println!("loss attribution (rows: true phase; cols: TPP diagnosis):");
    println!(
        "{:<18} {:>12} {:>12} {:>9}",
        "phase", "ChannelFade", "Congestion", "Unknown"
    );
    for phase in ["healthy (0-2s)", "fading (2-4s)", "congested (4-6s)"] {
        let g = |c: LossCause| per_phase.get(&(phase, c)).copied().unwrap_or(0);
        println!(
            "{:<18} {:>12} {:>12} {:>9}",
            phase,
            g(LossCause::ChannelFade),
            g(LossCause::Congestion),
            g(LossCause::Unknown)
        );
    }
    let correct: u32 = per_phase
        .iter()
        .filter(|((phase, cause), _)| {
            (phase.starts_with("fading") && *cause == LossCause::ChannelFade)
                || (phase.starts_with("congested") && *cause == LossCause::Congestion)
        })
        .map(|(_, n)| *n)
        .sum();
    println!(
        "\nattribution accuracy: {correct}/{losses} ({:.0}%)",
        100.0 * correct as f64 / losses.max(1) as f64
    );
    let q = sim.switch(ap).queue_stats(1, 0);
    println!(
        "ground truth: {} frames dropped at the AP queue, {} lost on the radio",
        q.packets_dropped,
        sim.link_losses(Endpoint::switch(ap, 1))
    );
}
