//! §2.1 — hunting micro-bursts in a leaf-spine fabric.
//!
//! An incast workload (four senders bursting simultaneously at a single
//! victim) creates queue spikes lasting a few hundred microseconds at
//! the victim's top-of-rack downlink. Two observers try to see them:
//!
//! * a **TPP monitor** sending `PUSH [Switch:SwitchID]` +
//!   `PUSH [Queue:QueueSize]` probes every 100 µs (per-RTT visibility);
//! * a **coarse poller** reading the same queue register off the
//!   management plane every 100 ms — generously *five orders of
//!   magnitude faster* than the "10s of seconds" the paper says today's
//!   monitoring achieves, and it still misses nearly everything.
//!
//! Run with: `cargo run --release --example microburst_hunt`

use tpp::apps::{detect_bursts, MicroburstMonitor};
use tpp::prelude::*;

/// Burst `frames_per_burst` frames at `victim` every `interval_ns`.
struct Burster {
    victim: EthernetAddress,
    frames_per_burst: usize,
    interval_ns: u64,
    bursts: u32,
    max_bursts: u32,
}

impl HostApp for Burster {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_timer(self.interval_ns, 0);
    }
    fn on_timer(&mut self, _token: u64, ctx: &mut HostCtx<'_>) {
        if self.bursts >= self.max_bursts {
            return;
        }
        self.bursts += 1;
        for _ in 0..self.frames_per_burst {
            ctx.send(build_frame(
                self.victim,
                ctx.mac(),
                DATA_ETHERTYPE,
                &[0u8; 1500],
            ));
        }
        ctx.set_timer(self.interval_ns, 0);
    }
}

/// Sink for the incast traffic.
struct Sink;
impl HostApp for Sink {}

fn main() {
    // 4 leaves x 2 hosts; the victim (leaf 0, host 0) receives incast
    // bursts from one host in each other rack, every 5 ms.
    let victim_mac = EthernetAddress::from_host_id(0);
    let params = LeafSpineParams {
        n_leaves: 4,
        n_spines: 2,
        hosts_per_leaf: 2,
        ..Default::default()
    };
    let mut apps: Vec<Box<dyn HostApp>> = Vec::new();
    for leaf in 0..4 {
        for host in 0..2 {
            let app: Box<dyn HostApp> = match (leaf, host) {
                // The victim sinks incast data and echoes the monitor's
                // TPP probes back.
                (0, 0) => Box::new(tpp::host::EchoReceiver::default()),
                // The monitor lives in the last rack and probes the
                // victim: its probes traverse leaf3 -> spine -> leaf0 and
                // the final hop's egress queue IS the congested victim
                // downlink.
                // 97 µs, not 100: a probe interval co-prime with the
                // 5 ms burst period sweeps through burst phase instead
                // of aliasing against it (the bursts here last ~85 µs).
                (3, 1) => Box::new(MicroburstMonitor::new(
                    victim_mac,
                    4,
                    time::micros(97),
                    0,
                    time::millis(100),
                )),
                // One burster per remote rack.
                (1, 0) | (2, 0) | (3, 0) => Box::new(Burster {
                    victim: victim_mac,
                    frames_per_burst: 24, // 36 KB burst
                    interval_ns: time::millis(5),
                    bursts: 0,
                    max_bursts: 18,
                }),
                _ => Box::new(Sink),
            };
            apps.push(app);
        }
    }
    let (mut sim, fabric) = leaf_spine(params, apps);

    // The coarse poller: sample ground truth every 100 ms.
    let victim_leaf = fabric.leaves[0];
    let mut polled: Vec<(u64, u64)> = Vec::new();
    let mut truth: Vec<(u64, u64)> = Vec::new();
    let end = time::millis(100);
    let mut t = 0;
    while t < end {
        t += time::micros(10);
        sim.run(RunLimit::Until(t));
        truth.push((t, sim.switch(victim_leaf).queue_len_bytes(0, 0)));
        if t % time::millis(100) == 0 {
            polled.push((t, sim.switch(victim_leaf).queue_len_bytes(0, 0)));
        }
    }
    let peak_truth = truth.iter().map(|(_, q)| *q).max().unwrap_or(0);
    let truth_bursts = detect_bursts(&truth, 10_000, time::micros(500));
    println!(
        "ground truth (10 µs oracle): peak victim queue {} B, {} bursts\n",
        peak_truth,
        truth_bursts.len()
    );

    let monitor = sim.host_app::<MicroburstMonitor>(fabric.hosts[3][1]);
    println!(
        "TPP monitor: {} probes sent, {} echoes decoded, {} samples",
        monitor.probes_sent,
        monitor.echoes_received,
        monitor.samples.len()
    );

    // Hunt bursts on every switch the probes observed; the victim leaf
    // (0x10, final hop) is where the incast queue lives.
    let threshold = 10_000; // bytes
    let merge_gap = time::micros(500);
    println!("\nper-switch burst report (threshold {threshold} B):");
    let mut tpp_total = 0;
    for sid in monitor.switches_observed() {
        let series = monitor.series_for(sid);
        let bursts = detect_bursts(&series, threshold, merge_gap);
        let peak = series.iter().map(|(_, q)| *q).max().unwrap_or(0);
        println!(
            "  switch {:#04x}: {} samples, peak queue {} B, {} bursts",
            sid,
            series.len(),
            peak,
            bursts.len()
        );
        for b in bursts.iter().take(4) {
            println!(
                "      burst: t = {:.2}..{:.2} ms, peak {} B ({} µs)",
                b.start_ns as f64 / 1e6,
                b.end_ns as f64 / 1e6,
                b.peak_bytes,
                b.duration_ns() / 1_000
            );
        }
        tpp_total += bursts.len();
    }

    let polled_bursts = detect_bursts(&polled, threshold, time::millis(200));
    println!(
        "\ncoarse poller (100 ms): {} samples, {} bursts detected",
        polled.len(),
        polled_bursts.len()
    );
    println!(
        "TPP monitor (100 µs):   {} bursts detected across observed switches",
        tpp_total
    );
    println!(
        "\nverdict: {}",
        if tpp_total > polled_bursts.len() {
            "per-packet dataplane visibility catches micro-bursts the control plane cannot"
        } else {
            "unexpected: poller kept up (try a burstier workload)"
        }
    );
}
