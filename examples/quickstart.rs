//! Quickstart: the paper's Figure 1, end to end.
//!
//! A host writes a one-instruction TPP — `PUSH [Queue:QueueSize]` — and
//! sends it across a three-switch path. Each switch ASIC executes the
//! instruction in its dataplane, appending its egress queue depth to the
//! packet's memory and advancing the stack pointer (0x0 → 0x4 → 0x8 →
//! 0xc, exactly the walk Figure 1 illustrates). The receiving host reads
//! a per-hop queue breakdown off the packet.
//!
//! Run with: `cargo run --release --example quickstart`

use tpp::prelude::*;

/// Sends one telemetry probe at t = 0.
struct Prober;

impl HostApp for Prober {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        let program = assemble("PUSH [Queue:QueueSize]").expect("valid program");
        println!("in-network program:\n  PUSH [Queue:QueueSize]\n");
        let probe = ProbeBuilder::stack(&program, 3); // preallocate 3 hops
        let frame = probe.build_frame(EthernetAddress::from_host_id(1), ctx.mac());
        println!(
            "probe frame: {} bytes total ({} header + {} instructions + {} packet memory)\n",
            frame.len(),
            14 + 16,
            4,
            12
        );
        ctx.send(frame);
    }
}

/// Receives the executed TPP and prints the per-hop breakdown.
#[derive(Default)]
struct Sink {
    report: Option<String>,
}

impl HostApp for Sink {
    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        let parsed = Frame::new_checked(&frame[..]).expect("ethernet frame");
        let tpp = TppPacket::new_checked(parsed.payload()).expect("TPP section");
        let sample = split_hops(&tpp, 1).expect("1 word per hop");
        let mut out = format!(
            "received at t = {:.1} µs after {} hops; SP = {:#x}\n",
            ctx.now() as f64 / 1_000.0,
            tpp.hop(),
            tpp.sp(),
        );
        for hop in &sample.hops {
            out.push_str(&format!(
                "  hop {}: queue size = {} bytes\n",
                hop.hop, hop.words[0]
            ));
        }
        self.report = Some(out);
    }
}

fn main() {
    // left host -- s1 -- s2 -- s3 -- right host, 10 Gb/s links.
    let (mut sim, chain) = linear_chain(
        LinearChainParams::default(),
        Box::new(Prober),
        Box::new(Sink::default()),
    );
    sim.run(RunLimit::Until(time::millis(1)));

    let sink = sim.host_app::<Sink>(chain.right);
    match &sink.report {
        Some(report) => print!("{report}"),
        None => println!("probe never arrived (unexpected)"),
    }
    println!("\n(idle network: all queues empty — rerun with cross-traffic");
    println!(" via `cargo run --release --example microburst_hunt` to see them fill)");
}
