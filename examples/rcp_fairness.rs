//! §2.2 / Figure 2 — RCP\* vs. the reference RCP simulation.
//!
//! Three flows share a 10 Mb/s bottleneck; they start at t = 0 s, 10 s
//! and 20 s (α = 0.5, β = 1, as in the paper). The figure's claim: the
//! end-host RCP\* implementation — switches only expose read/write TPPs,
//! all control logic at the senders — tracks the behaviour of RCP
//! implemented natively in the router: R(t)/C converges quickly to 1,
//! then 1/2, then 1/3.
//!
//! Run with: `cargo run --release --example rcp_fairness`
//!
//! Pass `--faults` (optionally `--faults=SEED`) to run the same
//! experiment under a seeded chaos schedule — a corruption window on the
//! bottleneck, a link flap at 12 s, and a reboot of the bottleneck
//! switch at 22 s — and print the injected-fault and probe-reliability
//! counters next to the convergence table.

use tpp::apps::rcpstar::{init_rate_registers, RcpStarConfig, RcpStarSender};
use tpp::netsim::{Endpoint, FaultPlan};
use tpp::prelude::*;
use tpp::rcp_ref::{FlowSchedule, RcpFluidSim, RcpParams};

const CAPACITY_BPS: f64 = 10e6;
const DURATION_S: u64 = 30;

fn main() {
    // --- RCP: the reference simulation (the ns-2 role) ---
    let reference = RcpFluidSim::new(
        RcpParams::paper_defaults(CAPACITY_BPS, 0.05),
        vec![
            FlowSchedule::starting_at(0.0),
            FlowSchedule::starting_at(10.0),
            FlowSchedule::starting_at(20.0),
        ],
    )
    .run(DURATION_S as f64);

    // --- RCP*: TPP + end-hosts on the packet simulator ---
    let starts = [0u64, time::secs(10), time::secs(20)];
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = starts
        .iter()
        .enumerate()
        .map(|(i, start)| {
            let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
            let cfg = RcpStarConfig {
                start_ns: *start,
                ..Default::default()
            };
            (
                Box::new(RcpStarSender::new(dst, cfg)) as Box<dyn HostApp>,
                Box::new(EchoReceiver::default()) as Box<dyn HostApp>,
            )
        })
        .collect();
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: 3,
            ..Default::default()
        },
        apps,
    );
    for sw in [bell.left, bell.right] {
        init_rate_registers(sim.switch_mut(sw));
    }

    // `--faults[=SEED]`: overlay a chaos schedule on the same run.
    let faults_seed: Option<u64> = std::env::args().find_map(|a| {
        a.strip_prefix("--faults").map(|rest| {
            rest.strip_prefix('=')
                .and_then(|s| s.parse().ok())
                .unwrap_or(7)
        })
    });
    if let Some(seed) = faults_seed {
        let bottleneck = Endpoint::switch(bell.left, bell.bottleneck_port);
        let mut plan = FaultPlan::new(seed);
        plan.corrupt_window(time::secs(5), time::secs(6), bottleneck, 200)
            .link_flap(time::secs(12), time::millis(12_300), bottleneck)
            .switch_reboot(time::secs(22), bell.left);
        sim.install_faults(&plan);
        println!("# chaos schedule installed (seed {seed}): corruption 5-6 s, flap 12-12.3 s, reboot 22 s");
    }

    sim.run(RunLimit::Until(time::secs(DURATION_S)));

    if faults_seed.is_some() {
        let f = sim.fault_counters();
        println!(
            "# injected: {} link-down drops, {} corrupted, {} duplicated, {} reordered, {} reboots",
            f.link_down_drops, f.corrupted, f.duplicated, f.reordered, f.reboots
        );
        for (i, s) in bell.senders.iter().enumerate() {
            let st = sim.host_app::<RcpStarSender>(*s).probe_stats();
            println!(
                "# flow {i} probes: {} sent, {} timed out, {} late, {} epoch mismatches",
                st.sent, st.timeouts, st.late, st.epoch_mismatches
            );
        }
    }

    // --- The Figure 2 series: R(t)/C for both systems ---
    let flow0 = &sim.host_app::<RcpStarSender>(bell.senders[0]).rate_trace;
    println!("# Figure 2: Ratio R(t)/C on the 10 Mb/s bottleneck");
    println!("# flows start at t = 0 s, 10 s, 20 s; alpha = 0.5, beta = 1");
    println!(
        "{:>6} {:>18} {:>18}",
        "t(s)", "RCP(simulation)", "RCP*(TPP+endhost)"
    );
    for half_sec in 0..(DURATION_S * 2) {
        let t_lo = half_sec as f64 * 0.5;
        let t_hi = t_lo + 0.5;
        let ref_mean = mean(
            reference
                .iter()
                .filter(|s| s.t_s >= t_lo && s.t_s < t_hi)
                .map(|s| s.r_over_c),
        );
        let star_mean = mean(
            flow0
                .iter()
                .filter(|(t, _)| {
                    let ts = *t as f64 / 1e9;
                    ts >= t_lo && ts < t_hi
                })
                .map(|(_, r)| *r as f64 / CAPACITY_BPS),
        );
        println!("{t_lo:>6.1} {ref_mean:>18.3} {star_mean:>18.3}");
    }

    // --- Settled-window summary (what the figure shows at a glance) ---
    println!("\n# settled windows (mean R/C):");
    println!(
        "{:>12} {:>8} {:>8} {:>8}",
        "system", "1 flow", "2 flows", "3 flows"
    );
    let windows = [(5.0, 10.0), (15.0, 20.0), (25.0, 30.0)];
    let ref_vals: Vec<f64> = windows
        .iter()
        .map(|(lo, hi)| {
            mean(
                reference
                    .iter()
                    .filter(|s| s.t_s >= *lo && s.t_s < *hi)
                    .map(|s| s.r_over_c),
            )
        })
        .collect();
    let star_vals: Vec<f64> = windows
        .iter()
        .map(|(lo, hi)| {
            mean(
                flow0
                    .iter()
                    .filter(|(t, _)| {
                        let ts = *t as f64 / 1e9;
                        ts >= *lo && ts < *hi
                    })
                    .map(|(_, r)| *r as f64 / CAPACITY_BPS),
            )
        })
        .collect();
    println!(
        "{:>12} {:>8.3} {:>8.3} {:>8.3}",
        "RCP", ref_vals[0], ref_vals[1], ref_vals[2]
    );
    println!(
        "{:>12} {:>8.3} {:>8.3} {:>8.3}",
        "RCP*", star_vals[0], star_vals[1], star_vals[2]
    );
    println!(
        "{:>12} {:>8.3} {:>8.3} {:>8.3}",
        "ideal",
        1.0,
        0.5,
        1.0 / 3.0
    );

    // --- Goodput fairness across the three RCP* flows ---
    println!("\n# RCP* goodput while all three flows were active (25-30 s):");
    for (i, r) in bell.receivers.iter().enumerate() {
        let echo = sim.host_app::<EchoReceiver>(*r);
        println!(
            "  flow {}: {:.2} Mb/s mean over its lifetime",
            i,
            echo.data_bytes as f64 * 8.0 / (time::secs(DURATION_S) - starts[i]) as f64 * 1e9 / 1e6
        );
    }
    let q = sim.switch(bell.left).queue_stats(bell.bottleneck_port, 0);
    println!(
        "\nbottleneck queue: high watermark {} B, drops {}",
        q.high_watermark_bytes, q.packets_dropped
    );
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let values: Vec<f64> = iter.collect();
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}
