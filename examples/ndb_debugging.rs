//! §2.3 — debugging the forwarding plane with ndb.
//!
//! A 3-switch chain forwards traced traffic under TCAM rules installed
//! by a controller. We then inject the three classic forwarding-plane
//! pathologies and show that per-packet TPP traces expose each one:
//!
//! 1. **Stale rule**: the controller updates a rule but the switch
//!    silently keeps the old version (control/dataplane divergence).
//!    Traces show the packet matched version 1 where the controller
//!    intended version 2.
//! 2. **Misrouting**: a rule forwards out the wrong port. Traces show a
//!    switch sequence that violates the intended path.
//! 3. **Black hole**: a rule drops traffic. Sent-vs-traced packet ids
//!    name the missing packets.
//!
//! Run with: `cargo run --release --example ndb_debugging`

use tpp::apps::ndb::{missing_ids, NdbProbeSender, PathPolicy, TraceCollector};
use tpp::control::NetworkController;
use tpp::prelude::*;

fn main() {
    let mut controller = NetworkController::new();

    // ---- Phase A: healthy network ----
    println!("=== phase A: healthy network ===");
    let (sent, traces, policy) = run_phase(&mut controller, Fault::None);
    report(&sent, &traces, &policy);

    // ---- Phase B: stale rule ----
    println!("\n=== phase B: stale rule on switch 2 (controller thinks v2, dataplane has v1) ===");
    let (sent, traces, policy) = run_phase(&mut NetworkController::new(), Fault::StaleRule);
    report(&sent, &traces, &policy);

    // ---- Phase C: misrouting (leaf-spine, so the detour is visible) ----
    println!("\n=== phase C: leaf 0x10 misroutes cross-rack traffic via spine 0x21 ===");
    phase_misroute();

    // ---- Phase D: black hole ----
    println!("\n=== phase D: black hole on switch 2 ===");
    let (sent, traces, policy) = run_phase(&mut NetworkController::new(), Fault::BlackHole);
    report(&sent, &traces, &policy);
}

#[derive(Clone, Copy, PartialEq)]
enum Fault {
    None,
    StaleRule,
    BlackHole,
}

/// Misrouting demo on a 2x2 leaf-spine: the intended path is
/// leaf 0x10 -> spine 0x20 -> leaf 0x11; a buggy high-priority rule on
/// the source leaf detours packets via spine 0x21. The packets still
/// arrive, and every trace names the wrong switch.
fn phase_misroute() {
    let mut controller = NetworkController::new();
    let dst_mac = EthernetAddress::from_host_id(1);
    let params = LeafSpineParams {
        n_leaves: 2,
        n_spines: 2,
        hosts_per_leaf: 1,
        ..Default::default()
    };
    let apps: Vec<Box<dyn HostApp>> = vec![
        Box::new(NdbProbeSender::new(dst_mac, 3, time::micros(50), 20)),
        Box::new(TraceCollector::default()),
    ];
    let (mut sim, fabric) = leaf_spine(params, apps);
    // Fault: leaf 0x10 port 2 leads to spine 0x21, not the intended 0x20.
    let bad = controller.new_entry_id();
    controller.install_rule(
        sim.switch_mut(fabric.leaves[0]),
        bad,
        20,
        FlowMatch {
            dst_mac: Some(dst_mac),
            ..Default::default()
        },
        FlowAction::Forward(2),
    );
    sim.run(RunLimit::Until(time::millis(50)));
    let policy = PathPolicy {
        expected_path: vec![0x10, 0x20, 0x11],
        expected_versions: Default::default(),
    };
    let sent = sim
        .host_app::<NdbProbeSender>(fabric.hosts[0][0])
        .sent_ids
        .clone();
    let traces = sim
        .host_app::<TraceCollector>(fabric.hosts[1][0])
        .traces
        .clone();
    report(&sent, &traces, &policy);
}

fn run_phase(
    controller: &mut NetworkController,
    fault: Fault,
) -> (Vec<u32>, Vec<tpp::apps::ndb::PathTrace>, PathPolicy) {
    let dst_mac = EthernetAddress::from_host_id(1); // right host
    let (mut sim, chain) = linear_chain(
        LinearChainParams {
            n_switches: 3,
            ..Default::default()
        },
        Box::new(NdbProbeSender::new(dst_mac, 3, time::micros(50), 20)),
        Box::new(TraceCollector::default()),
    );

    // The controller installs an explicit TCAM rule for the traced
    // traffic on every switch (forward toward the right: port 1).
    let entry = controller.new_entry_id();
    for sw in &chain.switches {
        controller.install_rule(
            sim.switch_mut(*sw),
            entry,
            10,
            FlowMatch {
                dst_mac: Some(dst_mac),
                ..Default::default()
            },
            FlowAction::Forward(1),
        );
    }

    // Fault injection on the middle switch (switch id 2).
    let mid = chain.switches[1];
    match fault {
        Fault::None => {}
        Fault::StaleRule => {
            // The controller intends an update; the dataplane misses it.
            controller.intend_version_only(sim.switch(mid).switch_id(), entry);
        }
        Fault::BlackHole => {
            let bad = controller.new_entry_id();
            controller.install_rule(
                sim.switch_mut(mid),
                bad,
                20,
                FlowMatch {
                    dst_mac: Some(dst_mac),
                    ..Default::default()
                },
                FlowAction::Drop,
            );
        }
    }

    sim.run(RunLimit::Until(time::millis(50)));

    let policy = PathPolicy {
        expected_path: vec![1, 2, 3],
        expected_versions: controller.intended_versions_all(),
    };
    let sent = sim.host_app::<NdbProbeSender>(chain.left).sent_ids.clone();
    let traces = sim.host_app::<TraceCollector>(chain.right).traces.clone();
    (sent, traces, policy)
}

fn report(sent: &[u32], traces: &[tpp::apps::ndb::PathTrace], policy: &PathPolicy) {
    println!(
        "sent {} traced packets, collected {} traces",
        sent.len(),
        traces.len()
    );
    if let Some(t) = traces.first() {
        println!("sample trace (packet {}):", t.packet_id);
        for hop in &t.hops {
            println!(
                "  switch {} matched entry {} v{} (in port {})",
                hop.switch_id, hop.entry_id, hop.entry_version, hop.input_port
            );
        }
    }
    let mut violations = 0;
    for trace in traces {
        for v in policy.verify(trace) {
            if violations < 3 {
                println!("VIOLATION: {v:?}");
            }
            violations += 1;
        }
    }
    let missing = missing_ids(sent, traces);
    if !missing.is_empty() {
        println!(
            "BLACK HOLE: {} packets never arrived (ids {:?}...)",
            missing.len(),
            &missing[..missing.len().min(5)]
        );
    }
    if violations == 0 && missing.is_empty() {
        println!("verdict: forwarding conforms to policy");
    } else {
        println!(
            "verdict: {violations} violations, {} missing packets",
            missing.len()
        );
    }
}
